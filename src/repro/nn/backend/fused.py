"""FusedBackend: reshaped-BLAS ops with an im2col workspace pool.

Same math as :class:`~.numpy_backend.NumpyBackend`, different substrate
idiom (per-op equivalence is pinned at ``atol <= 1e-5`` by
``tests/nn/test_backend.py``):

* GEMM-shaped contractions run as direct ``np.matmul`` on reshaped
  views instead of generic ``einsum(optimize=True)``, whose per-call
  contraction-path search is pure overhead at these sizes.
* The einsum that remains (the conv weight-gradient batched GEMM, where
  einsum's internal strategy beats a tensordot transpose-copy) reuses a
  cached contraction path keyed by (formula, shapes).
* im2col columns live in a :class:`WorkspacePool` — a free-list of
  scratch buffers keyed by shape — so a layer's forward -> backward pair
  and consecutive batches of the same shape recycle one allocation
  instead of malloc/free-ing the largest tensors of the step.  Buffers
  are checked out per forward (micro-batched pipelines hold several in
  flight) and returned by the matching backward, or by
  ``Module.clear_caches`` for forward-only (Phase-GP) batches.
* 1x1 stride-1 convolutions skip im2col entirely: the input *is* the
  column matrix as a reshape view and the forward is one batched matmul
  — the bottleneck-conv fast path that dominates ResNet-style models.
* Forward-only (``nn.no_grad``) streams get a folded conv+BN(+ReLU)
  path: when batch-norm normalizes with running statistics, the pair
  collapses into one GEMM with per-channel-rescaled weights, cached per
  (conv, bn) pair and invalidated by parameter-version bumps (any
  optimizer/GP update) or a running-stats refresh (DESIGN.md §8).
"""

from __future__ import annotations

import weakref
from typing import Optional

import numpy as np

from .. import functional as F
from .base import ConvCtx, register_backend
from .numpy_backend import NumpyBackend


class WorkspacePool:
    """Free-list of reusable scratch buffers keyed by (shape, dtype).

    ``acquire`` pops a parked buffer or allocates a fresh one; callers
    that are done with a buffer ``release`` it back.  Never-released
    buffers are simply garbage-collected when their owner drops them, so
    forward-only streams cannot leak; ``max_per_key`` bounds how many
    same-shaped buffers park at once (micro-batched pipelines check out
    several before any is returned).
    """

    def __init__(self, max_per_key: int = 8) -> None:
        self.max_per_key = max_per_key
        self._free: dict[tuple, list[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        # Buffers currently checked out (acquired, not yet released).
        # Zero after a forward-only step means the stream ran
        # allocation-clean: every workspace went straight back.
        self.outstanding = 0

    def acquire(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        self.outstanding += 1
        key = (tuple(shape), np.dtype(dtype).str)
        parked = self._free.get(key)
        if parked:
            self.hits += 1
            return parked.pop()
        self.misses += 1
        return np.empty(shape, dtype=dtype)

    def release(self, array: np.ndarray) -> None:
        # Deliberately unclamped: a negative value is the visible
        # symptom of a release-without-acquire (or double-release)
        # accounting bug, which clamping at zero would absorb — and
        # would let a same-sized genuine leak read as balanced.
        self.outstanding -= 1
        key = (array.shape, array.dtype.str)
        parked = self._free.setdefault(key, [])
        if len(parked) < self.max_per_key and not any(
            buf is array for buf in parked
        ):
            parked.append(array)

    def parked_bytes(self) -> int:
        return sum(
            buf.nbytes for parked in self._free.values() for buf in parked
        )

    def stats(self) -> dict:
        """Counters for benchmark records (peak-allocation proxy)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "outstanding": self.outstanding,
            "parked_bytes": self.parked_bytes(),
        }

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        self._free.clear()


class FusedBackend(NumpyBackend):
    """BLAS-matmul ops, cached contraction paths, pooled im2col buffers."""

    name = "fused"

    def __init__(self, max_buffers_per_shape: int = 8) -> None:
        self.pool = WorkspacePool(max_per_key=max_buffers_per_shape)
        self._paths: dict[tuple, list] = {}
        # (id(conv), id(bn)) -> (version key, folded weight, folded bias).
        self._folded: dict[tuple[int, int], tuple] = {}

    # -- workspace management --------------------------------------------
    def acquire_cols(self, shape, dtype) -> Optional[np.ndarray]:
        return self.pool.acquire(shape, dtype)

    def release(self, array: np.ndarray) -> None:
        self.pool.release(array)

    def clear_workspaces(self) -> None:
        self.pool.clear()

    # -- cached einsum contraction paths ---------------------------------
    def _einsum(self, formula: str, *operands: np.ndarray, dtype=None):
        key = (formula, tuple(op.shape for op in operands), dtype)
        path = self._paths.get(key)
        if path is None:
            path, _ = np.einsum_path(formula, *operands, optimize="optimal")
            self._paths[key] = path
        return np.einsum(formula, *operands, optimize=path, dtype=dtype)

    # -- unfold into pooled workspace ------------------------------------
    def unfold(self, x, kernel, stride, padding, fill_value=0.0):
        batch, channels, height, width = x.shape
        out_h = F.conv_output_size(height, kernel, stride, padding)
        out_w = F.conv_output_size(width, kernel, stride, padding)
        buf = self.pool.acquire(
            (batch, channels * kernel * kernel, out_h * out_w), x.dtype
        )
        return F.im2col(x, kernel, stride, padding, fill_value, out=buf)

    # -- convolution -----------------------------------------------------
    @staticmethod
    def _is_pointwise(kernel: int, stride: int, padding: int) -> bool:
        return kernel == 1 and stride == 1 and padding == 0

    def conv2d_forward(self, x, weight, bias, stride, padding):
        out_channels, _, kernel, _ = weight.shape
        batch = x.shape[0]
        if self._is_pointwise(kernel, stride, padding):
            # 1x1 fast path: the input already is the column matrix.
            out_h, out_w = x.shape[2], x.shape[3]
            cols = x.reshape(batch, x.shape[1], out_h * out_w)
            pooled = False
        else:
            cols, out_h, out_w = self.unfold(x, kernel, stride, padding)
            pooled = True
        w_flat = weight.reshape(out_channels, -1)
        out = np.matmul(w_flat, cols)
        if bias is not None:
            out += bias[None, :, None]
        ctx = ConvCtx(self, cols, x.shape, kernel, stride, padding, pooled=pooled)
        return out.reshape(batch, out_channels, out_h, out_w), ctx

    def conv2d_backward(self, grad_out, weight, ctx, with_bias=False):
        if ctx.released:
            # The cols workspace went back to the pool (first backward or
            # clear_caches) and may have been overwritten by another
            # layer; recomputing from it would be silent corruption.
            raise RuntimeError(
                "conv2d_backward called on a released context; run the "
                "layer's forward again before a second backward"
            )
        batch = grad_out.shape[0]
        out_channels = weight.shape[0]
        g_flat = grad_out.reshape(batch, out_channels, -1)
        # Batched-GEMM contraction over (batch, positions); the cached
        # path skips einsum's per-call contraction search (and measures
        # ~2x faster than the tensordot transpose-copy formulation).
        grad_w = self._einsum("bol,bkl->ok", g_flat, ctx.cols).reshape(
            weight.shape
        )
        grad_b = g_flat.sum(axis=(0, 2)) if with_bias else None
        w_flat = weight.reshape(out_channels, -1)
        if self._is_pointwise(ctx.kernel, ctx.stride, ctx.padding):
            grad_x = np.matmul(w_flat.T, g_flat).reshape(ctx.x_shape)
        else:
            grad_cols = np.matmul(
                w_flat.T, g_flat, out=self.pool.acquire(ctx.cols.shape, g_flat.dtype)
            )
            grad_x = self.fold(
                grad_cols, ctx.x_shape, ctx.kernel, ctx.stride, ctx.padding
            )
            self.pool.release(grad_cols)
            ctx.release()
        return grad_x, grad_w, grad_b

    # -- linear ----------------------------------------------------------
    def linear_forward(self, x, weight, bias):
        if x.ndim == 2:
            out = np.matmul(x, weight.T)
        else:
            x2 = x.reshape(-1, x.shape[-1])
            out = np.matmul(x2, weight.T).reshape(
                x.shape[:-1] + (weight.shape[0],)
            )
        if bias is not None:
            out += bias
        return out

    # -- attention contractions ------------------------------------------
    # Batched matmul on (swapaxes) views, the same reshaped-GEMM trick
    # as the convolutions: the head contraction is a stacked GEMM whose
    # 2-D slices keep one unit-stride axis, so BLAS takes them via its
    # lda/transpose flags without materializing copies.  This replaced
    # the cached-path einsums, which measured at ~0.98x of the reference
    # (einsum path search amortized but per-call dispatch overhead not);
    # direct matmul measures 1.1-3.8x across the four contractions on
    # both contiguous and split-heads-view operands.
    def attn_scores(self, q, k):
        return np.matmul(q, k.swapaxes(2, 3))

    def attn_context(self, p, v):
        return np.matmul(p, v)

    def attn_context_t(self, p, g):
        return np.matmul(p.swapaxes(2, 3), g)

    # -- no-grad conv+BN(+ReLU) folding ----------------------------------
    @staticmethod
    def _fold_versions(conv, bn) -> tuple:
        return (
            conv.weight.version,
            conv.bias.version if conv.bias is not None else -1,
            bn.weight.version,
            bn.bias.version,
            bn.stats_version,
        )

    def _folded_params(self, conv, bn) -> tuple[np.ndarray, np.ndarray]:
        """Folded (weight, bias) for a Conv2d -> BatchNorm2d pair.

        ``y = gamma * (conv(x) - mean) * inv_std + beta`` collapses into
        a single convolution with ``W' = W * s`` and
        ``b' = beta + s * (conv_bias - mean)`` where
        ``s = gamma / sqrt(running_var + eps)`` per output channel.
        Cached per (conv, bn) pair; the cache key is the parameters'
        mutation versions plus the BN stats version, so any optimizer
        step — a Phase-GP predicted update included — or a running-stats
        refresh invalidates it on the next lookup.
        """
        key = (id(conv), id(bn))
        versions = self._fold_versions(conv, bn)
        entry = self._folded.get(key)
        # The identity check (weakrefs still pointing at *these* layers)
        # guards against id() reuse after the original pair was
        # collected; the weakref callback also evicts dead entries so
        # the cache cannot grow with discarded models.
        if (
            entry is not None
            and entry[0] == versions
            and entry[3]() is conv
            and entry[4]() is bn
        ):
            return entry[1], entry[2]
        scale = bn.weight.data / np.sqrt(bn.running_var + bn.eps)
        w = (conv.weight.data * scale[:, None, None, None]).astype(np.float32)
        conv_bias = (
            conv.bias.data if conv.bias is not None else np.float32(0.0)
        )
        b = (
            bn.bias.data + scale * (conv_bias - bn.running_mean)
        ).astype(np.float32)
        evict = lambda _ref, key=key: self._folded.pop(key, None)  # noqa: E731
        self._folded[key] = (
            versions,
            w,
            b,
            weakref.ref(conv, evict),
            weakref.ref(bn, evict),
        )
        return w, b

    def folded_conv_bn(self, conv, bn, x, relu: bool = False) -> np.ndarray:
        """Forward-only Conv2d+BatchNorm2d(+ReLU) as a single GEMM.

        Valid only when the BN normalizes with its *running* statistics
        (eval mode) — batch-stat normalization cannot be folded because
        the statistics depend on the conv output being computed.  The
        ``Sequential`` no-grad fast path enforces that plus hook absence
        before calling here.  No backward context is retained.
        """
        weight, bias = self._folded_params(conv, bn)
        out, ctx = self.conv2d_forward(
            x, weight, bias, conv.stride, conv.padding
        )
        ctx.release()
        if relu:
            np.maximum(out, 0.0, out=out)
        return out

    def clear_folded(self) -> None:
        """Drop every cached folded conv+BN weight."""
        self._folded.clear()

    # Batch-norm moments deliberately inherit the reference two-pass
    # mean/var: measurement showed NumPy's pairwise-summation reductions
    # are already optimal here, and every single-pass sum-of-squares
    # variant either loses to it or breaks the atol<=1e-5 equivalence
    # pin through catastrophic cancellation on offset activations.


register_backend("fused", FusedBackend)
