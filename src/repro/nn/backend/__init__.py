"""Pluggable compute backends for the layer framework's hot tensor ops.

See :mod:`.base` for the dispatch rules and DESIGN.md §7 for the
architecture.  Importing this package registers the three built-in
backends: ``"numpy"`` (the verbatim reference), ``"fused"``
(reshaped-BLAS matmul + im2col workspace pool + 1x1 fast path) and
``"native"`` (compiled C kernels; registered always, buildable only
where a C compiler is present — :func:`native_available` reports
which).
"""

from .base import (
    Backend,
    BackendSpec,
    ConvCtx,
    backend_scope,
    current_backend,
    get_backend,
    list_backends,
    register_backend,
    reset_backend_stats,
    resolve_backend,
    use_backend,
)
from .fused import FusedBackend, WorkspacePool
from .native import NativeBackend, NativeUnavailableError, native_available
from .numpy_backend import NumpyBackend

__all__ = [
    "Backend",
    "BackendSpec",
    "ConvCtx",
    "FusedBackend",
    "NativeBackend",
    "NativeUnavailableError",
    "NumpyBackend",
    "WorkspacePool",
    "backend_scope",
    "current_backend",
    "get_backend",
    "list_backends",
    "native_available",
    "register_backend",
    "reset_backend_stats",
    "resolve_backend",
    "use_backend",
]
