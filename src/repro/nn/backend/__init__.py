"""Pluggable compute backends for the layer framework's hot tensor ops.

See :mod:`.base` for the dispatch rules and DESIGN.md §7 for the
architecture.  Importing this package registers the two built-in
backends: ``"numpy"`` (the verbatim reference) and ``"fused"``
(reshaped-BLAS matmul + im2col workspace pool + 1x1 fast path).
"""

from .base import (
    Backend,
    BackendSpec,
    ConvCtx,
    backend_scope,
    current_backend,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
    use_backend,
)
from .fused import FusedBackend, WorkspacePool
from .numpy_backend import NumpyBackend

__all__ = [
    "Backend",
    "BackendSpec",
    "ConvCtx",
    "FusedBackend",
    "NumpyBackend",
    "WorkspacePool",
    "backend_scope",
    "current_backend",
    "get_backend",
    "list_backends",
    "register_backend",
    "resolve_backend",
    "use_backend",
]
