"""NativeBackend: compiled C kernels for the convolution-shaped ops.

The hot ops — conv2d forward/backward and the pooling unfold/fold —
dispatch to the shared library built from ``_native/kernels.c`` (see
:mod:`.native_build`).  Convolution runs as direct tiled loops over the
NCHW input: no im2col column matrix is ever materialized, so the
forward touches ``x`` once instead of copying it K*K times, and the
backward context pins the *input* instead of a pooled workspace.
Everything else (linear GEMMs, attention contractions, moments, the 1x1
pointwise fast path, the workspace pool for pooling layers) is
inherited from :class:`~.fused.FusedBackend`, as is the fold pipeline,
so a folded no-grad graph runs identically on both.

Dispatch sends an op to C only where the kernels actually win.  Linear
layers stay on the inherited BLAS path: the library ships C
``linear_forward``/``linear_backward`` kernels, but a hand-rolled GEMM
loses to a tuned BLAS by an order of magnitude at practical shapes —
conv wins natively because skipping im2col changes the memory traffic,
not because the C compiler out-multiplies BLAS.  Strided convolutions
fall back to the im2col path for the same reason: the C microkernel is
register-blocked for stride-1 output rows, and the generic strided loop
it degrades to runs 2-5x behind BLAS at ResNet-style shapes.  Set
``REPRO_NATIVE_LINEAR=1`` / ``REPRO_NATIVE_STRIDED=1`` to dispatch
those cases to the C kernels anyway (the equivalence tests do, to keep
every kernel verified).

Dispatch is eligibility-checked per call: float32 C-contiguous operands
take the C kernels, anything else (float64 gradchecks, sliced views)
falls back to the inherited pure-Python implementation — the backend is
always *correct*, the kernels are an acceleration of the common case.

Construction raises :class:`NativeUnavailableError` when the extension
cannot be built (no compiler, ``REPRO_NATIVE=0``); callers that want to
degrade gracefully check :func:`native_available` first, as the bench
gate and test matrix do.
"""

from __future__ import annotations

import ctypes
import os
from typing import Optional

import numpy as np

from .. import functional as F
from . import native_build
from .base import ConvCtx, register_backend
from .fused import FusedBackend


class NativeUnavailableError(RuntimeError):
    """The native backend was requested but its extension is unusable."""


def native_available() -> bool:
    """True when the compiled kernels can be built/loaded on this host."""
    return native_build.available()


def _f32c(a: np.ndarray) -> bool:
    return a.dtype == np.float32 and a.flags.c_contiguous


def _ptr(a: Optional[np.ndarray]):
    return None if a is None else ctypes.c_void_p(a.ctypes.data)


class NativeBackend(FusedBackend):
    """Direct-loop compiled conv/pooling kernels over float32."""

    name = "native"

    def __init__(self, max_buffers_per_shape: int = 8) -> None:
        super().__init__(max_buffers_per_shape)
        try:
            self._lib = native_build.load()
        except (native_build.NativeBuildError, OSError) as exc:
            raise NativeUnavailableError(
                f"native backend unavailable: {exc}"
            ) from exc
        # Opt-in only — BLAS beats the C GEMM and the generic strided
        # conv loop (see the module docstring).
        self._c_linear = os.environ.get("REPRO_NATIVE_LINEAR") == "1"
        self._c_strided = os.environ.get("REPRO_NATIVE_STRIDED") == "1"
        # Per-op native-vs-fallback decision counts, bridged into the
        # metrics registry by repro.obs.bridge_native.
        self.dispatch_counts: dict[str, dict[str, int]] = {}

    def _dispatch(self, op: str, native: bool) -> bool:
        paths = self.dispatch_counts.setdefault(op, {"native": 0, "fallback": 0})
        paths["native" if native else "fallback"] += 1
        return native

    def reset_stats(self) -> None:
        super().reset_stats()
        self.dispatch_counts = {}

    # -- convolution -----------------------------------------------------
    def conv2d_forward(self, x, weight, bias, stride, padding):
        kernel = weight.shape[2]
        if (
            self._is_pointwise(kernel, stride, padding)
            or (stride != 1 and not self._c_strided)
            or not _f32c(x)
            or not _f32c(weight)
            or (bias is not None and not _f32c(bias))
        ):
            # 1x1 stride-1 convs are a single BLAS GEMM upstream (the
            # input *is* the column matrix), strided convs run faster
            # through im2col (module docstring); fall back for anything
            # else the kernels don't cover.
            self._dispatch("conv2d_forward", False)
            return super().conv2d_forward(x, weight, bias, stride, padding)
        self._dispatch("conv2d_forward", True)
        batch, in_c, height, width = x.shape
        out_c = weight.shape[0]
        out_h = F.conv_output_size(height, kernel, stride, padding)
        out_w = F.conv_output_size(width, kernel, stride, padding)
        out = np.empty((batch, out_c, out_h, out_w), dtype=np.float32)
        self._lib.conv2d_forward(
            _ptr(x), _ptr(weight), _ptr(bias), _ptr(out),
            batch, in_c, height, width, out_c, kernel,
            stride, padding, out_h, out_w,
        )
        # The context pins the raw input (not a pooled column buffer):
        # backward re-reads x directly, release() is a no-op, and
        # forward-only streams have nothing to return to the pool.
        ctx = ConvCtx(self, x, x.shape, kernel, stride, padding, pooled=False)
        return out, ctx

    def conv2d_backward(self, grad_out, weight, ctx, with_bias=False):
        if ctx.cols.ndim != 4:
            # Context from the inherited path (pointwise or fallback
            # forward): cols is a column matrix, not the input.
            self._dispatch("conv2d_backward", False)
            return super().conv2d_backward(grad_out, weight, ctx, with_bias)
        self._dispatch("conv2d_backward", True)
        x = ctx.cols
        g = np.ascontiguousarray(grad_out, dtype=np.float32)
        batch, in_c, height, width = x.shape
        out_c, _, kernel, _ = weight.shape
        out_h, out_w = g.shape[2], g.shape[3]
        grad_x = np.empty_like(x)
        grad_w = np.empty_like(weight)
        grad_b = np.empty(out_c, dtype=np.float32) if with_bias else None
        dims = (
            batch, in_c, height, width, out_c, kernel,
            ctx.stride, ctx.padding, out_h, out_w,
        )
        self._lib.conv2d_backward_input(_ptr(g), _ptr(weight), _ptr(grad_x), *dims)
        self._lib.conv2d_backward_weight(_ptr(x), _ptr(g), _ptr(grad_w), _ptr(grad_b), *dims)
        return grad_x, grad_w, grad_b

    # -- linear ----------------------------------------------------------
    def linear_forward(self, x, weight, bias):
        if not self._c_linear or not (
            _f32c(x) and _f32c(weight) and (bias is None or _f32c(bias))
        ):
            self._dispatch("linear_forward", False)
            return super().linear_forward(x, weight, bias)
        self._dispatch("linear_forward", True)
        rows = int(np.prod(x.shape[:-1], dtype=np.int64))
        out_f, in_f = weight.shape
        out = np.empty(x.shape[:-1] + (out_f,), dtype=np.float32)
        self._lib.linear_forward(
            _ptr(x), _ptr(weight), _ptr(bias), _ptr(out), rows, in_f, out_f
        )
        return out

    def linear_backward(self, x, grad_out, weight, with_bias=False):
        if not self._c_linear or not (
            _f32c(weight) and _f32c(x) and _f32c(grad_out)
        ):
            self._dispatch("linear_backward", False)
            return super().linear_backward(x, grad_out, weight, with_bias)
        self._dispatch("linear_backward", True)
        out_f, in_f = weight.shape
        rows = int(np.prod(x.shape[:-1], dtype=np.int64))
        grad_x = np.empty_like(x)
        grad_w = np.empty_like(weight)
        grad_b = np.empty(out_f, dtype=np.float32) if with_bias else None
        self._lib.linear_backward(
            _ptr(x), _ptr(grad_out), _ptr(weight),
            _ptr(grad_x), _ptr(grad_w), _ptr(grad_b),
            rows, in_f, out_f,
        )
        return grad_x, grad_w, grad_b

    # -- unfold / fold (pooling columns) ---------------------------------
    def unfold(self, x, kernel, stride, padding, fill_value=0.0):
        if not _f32c(x):
            self._dispatch("unfold", False)
            return super().unfold(x, kernel, stride, padding, fill_value)
        self._dispatch("unfold", True)
        batch, channels, height, width = x.shape
        out_h = F.conv_output_size(height, kernel, stride, padding)
        out_w = F.conv_output_size(width, kernel, stride, padding)
        cols = self.pool.acquire(
            (batch, channels * kernel * kernel, out_h * out_w), x.dtype
        )
        self._lib.unfold(
            _ptr(x), _ptr(cols),
            batch, channels, height, width, kernel,
            stride, padding, out_h, out_w,
            ctypes.c_float(fill_value),
        )
        return cols, out_h, out_w

    def fold(self, cols, input_shape, kernel, stride, padding):
        if not _f32c(cols):
            self._dispatch("fold", False)
            return super().fold(cols, input_shape, kernel, stride, padding)
        self._dispatch("fold", True)
        batch, channels, height, width = input_shape
        out_h = F.conv_output_size(height, kernel, stride, padding)
        out_w = F.conv_output_size(width, kernel, stride, padding)
        grad_x = np.empty(input_shape, dtype=np.float32)
        self._lib.fold(
            _ptr(cols), _ptr(grad_x),
            batch, channels, height, width, kernel,
            stride, padding, out_h, out_w,
        )
        return grad_x


register_backend("native", NativeBackend)
