"""The reference backend: the pre-refactor layer math, moved verbatim.

Every op here is byte-for-byte the idiom the layers used before the
backend seam existed — per-call ``einsum(optimize=True)``, per-call
im2col allocation — so the default training numerics are unchanged and
alternative backends have a fixed reference to be equivalence-tested
against (``tests/nn/test_backend.py``, atol <= 1e-5).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .. import functional as F
from .base import Backend, ConvCtx, register_backend


class NumpyBackend(Backend):
    """Plain NumPy ops, exactly as the layers originally wrote them."""

    name = "numpy"

    # -- unfold / fold ---------------------------------------------------
    def unfold(self, x, kernel, stride, padding, fill_value=0.0):
        return F.im2col(x, kernel, stride, padding, fill_value)

    def fold(self, cols, input_shape, kernel, stride, padding):
        return F.col2im(cols, input_shape, kernel, stride, padding)

    # -- convolution -----------------------------------------------------
    def conv2d_forward(self, x, weight, bias, stride, padding):
        out_channels, _, kernel, _ = weight.shape
        cols, out_h, out_w = self.unfold(x, kernel, stride, padding)
        w_flat = weight.reshape(out_channels, -1)
        out = np.einsum("ok,bkl->bol", w_flat, cols, optimize=True)
        if bias is not None:
            out = out + bias[None, :, None]
        ctx = ConvCtx(self, cols, x.shape, kernel, stride, padding)
        return out.reshape(x.shape[0], out_channels, out_h, out_w), ctx

    def conv2d_backward(self, grad_out, weight, ctx, with_bias=False):
        batch = grad_out.shape[0]
        out_channels = weight.shape[0]
        g_flat = grad_out.reshape(batch, out_channels, -1)
        grad_w = np.einsum(
            "bol,bkl->ok", g_flat, ctx.cols, optimize=True
        ).reshape(weight.shape)
        grad_b = g_flat.sum(axis=(0, 2)) if with_bias else None
        w_flat = weight.reshape(out_channels, -1)
        grad_cols = np.einsum("ok,bol->bkl", w_flat, g_flat, optimize=True)
        grad_x = self.fold(
            grad_cols, ctx.x_shape, ctx.kernel, ctx.stride, ctx.padding
        )
        return grad_x, grad_w, grad_b

    # -- linear ----------------------------------------------------------
    def linear_forward(self, x, weight, bias):
        out = x @ weight.T
        if bias is not None:
            out = out + bias
        return out

    def linear_backward(self, x, grad_out, weight, with_bias=False):
        out_features, in_features = weight.shape
        # Collapse any leading dims (batch, sequence, ...) into one.
        x2 = x.reshape(-1, in_features)
        g2 = grad_out.reshape(-1, out_features)
        grad_w = g2.T @ x2
        grad_b = g2.sum(axis=0) if with_bias else None
        grad_x = (g2 @ weight).reshape(x.shape)
        return grad_x, grad_w, grad_b

    # -- attention contractions ------------------------------------------
    def attn_scores(self, q, k):
        return np.einsum("bhqd,bhkd->bhqk", q, k, optimize=True)

    def attn_context(self, p, v):
        return np.einsum("bhqk,bhkd->bhqd", p, v, optimize=True)

    def attn_context_t(self, p, g):
        return np.einsum("bhqk,bhqd->bhkd", p, g, optimize=True)

    # -- normalization moments -------------------------------------------
    def moments(
        self,
        x: np.ndarray,
        axes: Union[int, tuple[int, ...]],
        keepdims: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        return (
            x.mean(axis=axes, keepdims=keepdims),
            x.var(axis=axes, keepdims=keepdims),
        )


register_backend("numpy", NumpyBackend)
