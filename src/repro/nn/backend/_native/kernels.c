/* kernels.c — C kernels behind the "native" compute backend.
 *
 * Direct convolution over NCHW float32 tensors: instead of
 * materializing an im2col column matrix (which copies the activation
 * K*K times and is a large slice of the fused backend's conv cost at
 * bench shapes), the input is copied once into a zero-padded plane and
 * the convolution runs as register-blocked loops over it.  The forward
 * and the input gradient share one microkernel (`conv_sample`, the
 * input gradient being a stride-1 convolution of the dilated-padded
 * output gradient with the channel-transposed, spatially-flipped
 * weights); the weight gradient has a fully unrolled K=3/stride=1 fast
 * path that keeps all nine tap accumulators in vector registers.
 * Linear forward/backward and the pooling unfold/fold round out the
 * set.  Everything is exported with C linkage and called through
 * ctypes (see native_build.py for the build recipe, native.py for
 * dispatch).
 *
 * Numerical contract: float32 storage everywhere, float32 arithmetic in
 * the saxpy/fma loops, float64 outer accumulators for the long
 * reductions (weight/bias gradients) so per-op equivalence with the
 * NumPy reference holds at atol <= 1e-5 without -ffast-math (which is
 * deliberately NOT used: linking crtfastmath.o from a shared library
 * would flip the process-wide FTZ/DAZ flags under NumPy's feet).
 * Reduction loops are written with explicit multi-accumulator blocks so
 * the compiler can vectorize them without reassociation licenses; the
 * microkernel inner loops run over 16-float tiles — exactly one
 * AVX-512 register, or two AVX2 ones — with constant trip counts.
 *
 * Threading: every entry point parallelizes its outermost independent
 * loop with OpenMP when compiled with -fopenmp; each (sample, plane)
 * pair is owned by exactly one thread, so there are no atomics and the
 * result is deterministic for a fixed thread count.
 *
 * Allocation-failure / exotic-geometry paths fall back to the naive
 * bounds-checked loops at the bottom of this file, so the exported
 * entry points are total over all valid inputs.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#if defined(_MSC_VER)
#define EXPORT __declspec(dllexport)
#else
#define EXPORT __attribute__((visibility("default")))
#endif

typedef int64_t i64;

#define TILE 16

/* 16-float vector type (one AVX-512 register; GCC splits it into two
 * AVX2 halves on older targets).  Named vector variables are the only
 * reliable way to keep accumulator tiles in registers across a loop —
 * equivalent float[9][16] locals verifiably round-trip through the
 * stack on every iteration, which makes the weight-gradient kernel
 * load/store bound instead of fma bound. */
#if defined(__GNUC__) && !defined(_MSC_VER)
#define HAVE_V16 1
typedef float v16 __attribute__((vector_size(64)));
static inline v16 v16_load(const float *p) {
    v16 v;
    memcpy(&v, p, sizeof(v));
    return v;
}
static inline float v16_sum(v16 v) {
    /* Explicit pairwise tree: a sequential s += v[i] loop cannot be
     * reordered without -fassociative-math and serializes on add
     * latency. */
    const float s01 = v[0] + v[1], s23 = v[2] + v[3];
    const float s45 = v[4] + v[5], s67 = v[6] + v[7];
    const float s89 = v[8] + v[9], sab = v[10] + v[11];
    const float scd = v[12] + v[13], sef = v[14] + v[15];
    return (((s01 + s23) + (s45 + s67)) + ((s89 + sab) + (scd + sef)));
}
#endif

static void conv2d_forward_naive(const float *x, const float *w,
                                 const float *bias, float *out, i64 N, i64 C,
                                 i64 H, i64 W, i64 O, i64 K, i64 stride,
                                 i64 pad, i64 OH, i64 OW);
static void conv2d_backward_input_naive(const float *g, const float *w,
                                        float *gx, i64 N, i64 C, i64 H, i64 W,
                                        i64 O, i64 K, i64 stride, i64 pad,
                                        i64 OH, i64 OW);
static void conv2d_backward_weight_naive(const float *x, const float *g,
                                         float *gw, float *gb, i64 N, i64 C,
                                         i64 H, i64 W, i64 O, i64 K,
                                         i64 stride, i64 pad, i64 OH, i64 OW);

/* Valid output range [*lo, *hi) along one spatial axis such that the
 * input index iw = ow*stride - pad + k stays inside [0, W). */
static void ow_range(i64 W, i64 OW, i64 stride, i64 pad, i64 k, i64 *lo,
                     i64 *hi) {
    i64 shift = k - pad; /* iw = ow*stride + shift */
    i64 lo_ = 0, hi_ = OW;
    if (shift < 0)
        lo_ = (-shift + stride - 1) / stride;
    i64 max_iw = W - 1 - shift;
    if (max_iw < 0)
        hi_ = 0;
    else {
        i64 last = max_iw / stride;
        if (last + 1 < hi_)
            hi_ = last + 1;
    }
    if (hi_ < lo_)
        hi_ = lo_;
    *lo = lo_;
    *hi = hi_;
}

/* Copy P (H, W) planes into zero-padded (H+2p, W+2p) planes. */
static void pad_planes(const float *restrict x, float *restrict xpad, i64 P,
                       i64 H, i64 W, i64 pad) {
    const i64 Hp = H + 2 * pad, Wp = W + 2 * pad;
    i64 pl;
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
#endif
    for (pl = 0; pl < P; pl++) {
        const float *src = x + pl * H * W;
        float *dst = xpad + pl * Hp * Wp;
        memset(dst, 0, (size_t)(pad * Wp) * sizeof(float));
        for (i64 h = 0; h < H; h++) {
            float *row = dst + (pad + h) * Wp;
            for (i64 i = 0; i < pad; i++)
                row[i] = 0.0f;
            memcpy(row + pad, src + h * W, (size_t)W * sizeof(float));
            for (i64 i = 0; i < pad; i++)
                row[pad + W + i] = 0.0f;
        }
        memset(dst + (pad + H) * Wp, 0, (size_t)(pad * Wp) * sizeof(float));
    }
}

/* ------------------------------------------------------------------ */
/* Microkernel: valid convolution of one padded sample.                */
/*                                                                     */
/* xp:(C, Hp, Wp) padded input, w:(O, C, K, K), writes O output planes */
/* at op with row stride `orow` and plane stride `oplane` (decoupled   */
/* from OH/OW so the input-gradient path can write a cropped interior  */
/* region of a larger plane).  Blocks 4 output channels x 16 output    */
/* columns: the hot branch holds the 4x16 accumulator tile in vector   */
/* registers and performs 4 fused multiply-adds per input-row load.    */
/* ------------------------------------------------------------------ */
static void conv_sample(const float *restrict xp, const float *restrict w,
                        const float *restrict bias, float *restrict op, i64 C,
                        i64 Hp, i64 Wp, i64 O, i64 K, i64 stride, i64 OH,
                        i64 OW, i64 orow, i64 oplane) {
    const i64 CKK = C * K * K;
    for (i64 ob = 0; ob < O; ob += 4) {
        const i64 nb = (O - ob < 4) ? O - ob : 4;
        const float *wb = w + ob * CKK;
        for (i64 oh = 0; oh < OH; oh++) {
            for (i64 ow0 = 0; ow0 < OW; ow0 += TILE) {
                const i64 len = (OW - ow0 < TILE) ? OW - ow0 : TILE;
                float a[4][TILE];
                for (i64 j = 0; j < 4; j++)
                    for (i64 i = 0; i < TILE; i++)
                        a[j][i] = 0.0f;
                const float *xbase = xp + (oh * stride) * Wp + ow0 * stride;
                if (nb == 4 && len == TILE && stride == 1) {
                    for (i64 c = 0; c < C; c++) {
                        const float *xc = xbase + c * Hp * Wp;
                        const float *wc = wb + c * K * K;
                        for (i64 kh = 0; kh < K; kh++) {
                            const float *xr = xc + kh * Wp;
                            for (i64 kw = 0; kw < K; kw++) {
                                const float *xv = xr + kw;
                                const float w0 = wc[kh * K + kw];
                                const float w1 = wc[CKK + kh * K + kw];
                                const float w2 = wc[2 * CKK + kh * K + kw];
                                const float w3 = wc[3 * CKK + kh * K + kw];
                                for (i64 i = 0; i < TILE; i++) {
                                    a[0][i] += w0 * xv[i];
                                    a[1][i] += w1 * xv[i];
                                    a[2][i] += w2 * xv[i];
                                    a[3][i] += w3 * xv[i];
                                }
                            }
                        }
                    }
                } else {
                    for (i64 c = 0; c < C; c++) {
                        const float *xc = xbase + c * Hp * Wp;
                        for (i64 kh = 0; kh < K; kh++) {
                            const float *xr = xc + kh * Wp;
                            for (i64 kw = 0; kw < K; kw++) {
                                for (i64 j = 0; j < nb; j++) {
                                    const float wv =
                                        wb[j * CKK + (c * K + kh) * K + kw];
                                    for (i64 i = 0; i < len; i++)
                                        a[j][i] += wv * xr[i * stride + kw];
                                }
                            }
                        }
                    }
                }
                for (i64 j = 0; j < nb; j++) {
                    const float bv = bias ? bias[ob + j] : 0.0f;
                    float *orow_p = op + (ob + j) * oplane + oh * orow + ow0;
                    for (i64 i = 0; i < len; i++)
                        orow_p[i] = a[j][i] + bv;
                }
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* Convolution forward.                                                */
/* ------------------------------------------------------------------ */
EXPORT void conv2d_forward(const float *x, const float *w, const float *bias,
                           float *out, i64 N, i64 C, i64 H, i64 W, i64 O,
                           i64 K, i64 stride, i64 pad, i64 OH, i64 OW) {
    const i64 Hp = H + 2 * pad, Wp = W + 2 * pad;
    const float *xp = x;
    float *scratch = NULL;
    if (pad > 0) {
        scratch = malloc((size_t)(N * C * Hp * Wp) * sizeof(float));
        if (!scratch) {
            conv2d_forward_naive(x, w, bias, out, N, C, H, W, O, K, stride,
                                 pad, OH, OW);
            return;
        }
        pad_planes(x, scratch, N * C, H, W, pad);
        xp = scratch;
    }
    i64 n;
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
#endif
    for (n = 0; n < N; n++)
        conv_sample(xp + n * C * Hp * Wp, w, bias, out + n * O * OH * OW, C,
                    Hp, Wp, O, K, stride, OH, OW, OW, OH * OW);
    free(scratch);
}

/* ------------------------------------------------------------------ */
/* Convolution input gradient, as a convolution: gx is the stride-1    */
/* valid conv of the dilated-padded output gradient with the           */
/* channel-transposed, spatially-flipped weights.                      */
/* ------------------------------------------------------------------ */
EXPORT void conv2d_backward_input(const float *g, const float *w, float *gx,
                                  i64 N, i64 C, i64 H, i64 W, i64 O, i64 K,
                                  i64 stride, i64 pad, i64 OH, i64 OW) {
    const i64 q = K - 1 - pad; /* transpose-conv padding */
    if (q < 0) {
        conv2d_backward_input_naive(g, w, gx, N, C, H, W, O, K, stride, pad,
                                    OH, OW);
        return;
    }
    const i64 Hd = (OH - 1) * stride + 1, Wd = (OW - 1) * stride + 1;
    /* When (H + 2p - K) is not divisible by the stride, the last
     * rh/rw input rows/cols are only reached by the *smaller* kernel
     * taps; extending the right/bottom padding by the remainder makes
     * the valid conv output exactly (H, W). */
    const i64 rh = (H + 2 * pad - K) - (OH - 1) * stride;
    const i64 rw = (W + 2 * pad - K) - (OW - 1) * stride;
    const i64 Hdp = Hd + 2 * q + rh, Wdp = Wd + 2 * q + rw;
    float *wt = malloc((size_t)(C * O * K * K) * sizeof(float));
    float *gdp = malloc((size_t)(N * O * Hdp * Wdp) * sizeof(float));
    if (!wt || !gdp) {
        free(wt);
        free(gdp);
        conv2d_backward_input_naive(g, w, gx, N, C, H, W, O, K, stride, pad,
                                    OH, OW);
        return;
    }
    /* wt[c][o][kh][kw] = w[o][c][K-1-kh][K-1-kw] */
    for (i64 c = 0; c < C; c++)
        for (i64 o = 0; o < O; o++)
            for (i64 kh = 0; kh < K; kh++)
                for (i64 kw = 0; kw < K; kw++)
                    wt[((c * O + o) * K + kh) * K + kw] =
                        w[((o * C + c) * K + (K - 1 - kh)) * K + (K - 1 - kw)];
    i64 pl;
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
#endif
    for (pl = 0; pl < N * O; pl++) {
        const float *src = g + pl * OH * OW;
        float *dst = gdp + pl * Hdp * Wdp;
        memset(dst, 0, (size_t)(Hdp * Wdp) * sizeof(float));
        for (i64 oh = 0; oh < OH; oh++) {
            float *row = dst + (q + oh * stride) * Wdp + q;
            if (stride == 1)
                memcpy(row, src + oh * OW, (size_t)OW * sizeof(float));
            else
                for (i64 ow = 0; ow < OW; ow++)
                    row[ow * stride] = src[oh * OW + ow];
        }
    }
    i64 n;
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
#endif
    for (n = 0; n < N; n++)
        conv_sample(gdp + n * O * Hdp * Wdp, wt, NULL, gx + n * C * H * W, O,
                    Hdp, Wdp, C, K, 1, H, W, W, H * W);
    free(wt);
    free(gdp);
}

/* ------------------------------------------------------------------ */
/* Convolution weight/bias gradient.                                   */
/* gw[o,c,kh,kw] = sum_{n,oh,ow} g[n,o,oh,ow] * xpad[n,c,oh*s+kh,..]   */
/* ------------------------------------------------------------------ */
EXPORT void conv2d_backward_weight(const float *x, const float *g, float *gw,
                                   float *gb, i64 N, i64 C, i64 H, i64 W,
                                   i64 O, i64 K, i64 stride, i64 pad, i64 OH,
                                   i64 OW) {
    const i64 Hp = H + 2 * pad, Wp = W + 2 * pad;
    const float *xp = x;
    float *scratch = NULL;
    if (pad > 0) {
        scratch = malloc((size_t)(N * C * Hp * Wp) * sizeof(float));
        if (!scratch) {
            conv2d_backward_weight_naive(x, g, gw, gb, N, C, H, W, O, K,
                                         stride, pad, OH, OW);
            return;
        }
        pad_planes(x, scratch, N * C, H, W, pad);
        xp = scratch;
    }
    i64 o;
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
#endif
    for (o = 0; o < O; o++) {
        if (gb) {
            double bacc = 0.0;
            for (i64 n = 0; n < N; n++) {
                const float *gp = g + ((n * O + o) * OH) * OW;
                float racc[4] = {0.0f, 0.0f, 0.0f, 0.0f};
                i64 i = 0;
                for (; i + 4 <= OH * OW; i += 4) {
                    racc[0] += gp[i];
                    racc[1] += gp[i + 1];
                    racc[2] += gp[i + 2];
                    racc[3] += gp[i + 3];
                }
                for (; i < OH * OW; i++)
                    racc[0] += gp[i];
                bacc += (double)((racc[0] + racc[1]) + (racc[2] + racc[3]));
            }
            gb[o] = (float)bacc;
        }
        for (i64 c = 0; c < C; c++) {
            float *gwr = gw + (o * C + c) * K * K;
#if defined(HAVE_V16)
            if (K == 3 && stride == 1) {
                /* Nine tap accumulators, each one 16-float register
                 * vector, held across the whole plane; one grad load
                 * feeds nine fmas. */
                double accd[9] = {0.0};
                for (i64 n = 0; n < N; n++) {
                    const float *gp = g + ((n * O + o) * OH) * OW;
                    const float *xc = xp + (n * C + c) * Hp * Wp;
                    v16 a0 = {0.0f}, a1 = {0.0f}, a2 = {0.0f};
                    v16 a3 = {0.0f}, a4 = {0.0f}, a5 = {0.0f};
                    v16 a6 = {0.0f}, a7 = {0.0f}, a8 = {0.0f};
                    float tl[9] = {0.0f};
                    for (i64 oh = 0; oh < OH; oh++) {
                        const float *gr = gp + oh * OW;
                        const float *x0 = xc + oh * Wp;
                        const float *x1 = x0 + Wp;
                        const float *x2 = x1 + Wp;
                        i64 ow0 = 0;
                        for (; ow0 + TILE <= OW; ow0 += TILE) {
                            const v16 gv = v16_load(gr + ow0);
                            a0 += gv * v16_load(x0 + ow0);
                            a1 += gv * v16_load(x0 + ow0 + 1);
                            a2 += gv * v16_load(x0 + ow0 + 2);
                            a3 += gv * v16_load(x1 + ow0);
                            a4 += gv * v16_load(x1 + ow0 + 1);
                            a5 += gv * v16_load(x1 + ow0 + 2);
                            a6 += gv * v16_load(x2 + ow0);
                            a7 += gv * v16_load(x2 + ow0 + 1);
                            a8 += gv * v16_load(x2 + ow0 + 2);
                        }
                        for (; ow0 < OW; ow0++) {
                            const float gv = gr[ow0];
                            tl[0] += gv * x0[ow0];
                            tl[1] += gv * x0[ow0 + 1];
                            tl[2] += gv * x0[ow0 + 2];
                            tl[3] += gv * x1[ow0];
                            tl[4] += gv * x1[ow0 + 1];
                            tl[5] += gv * x1[ow0 + 2];
                            tl[6] += gv * x2[ow0];
                            tl[7] += gv * x2[ow0 + 1];
                            tl[8] += gv * x2[ow0 + 2];
                        }
                    }
                    accd[0] += (double)(v16_sum(a0) + tl[0]);
                    accd[1] += (double)(v16_sum(a1) + tl[1]);
                    accd[2] += (double)(v16_sum(a2) + tl[2]);
                    accd[3] += (double)(v16_sum(a3) + tl[3]);
                    accd[4] += (double)(v16_sum(a4) + tl[4]);
                    accd[5] += (double)(v16_sum(a5) + tl[5]);
                    accd[6] += (double)(v16_sum(a6) + tl[6]);
                    accd[7] += (double)(v16_sum(a7) + tl[7]);
                    accd[8] += (double)(v16_sum(a8) + tl[8]);
                }
                for (i64 k = 0; k < 9; k++)
                    gwr[k] = (float)accd[k];
            } else {
#else
            if (0) {
            } else {
#endif
                for (i64 kh = 0; kh < K; kh++) {
                    for (i64 kw = 0; kw < K; kw++) {
                        double acc = 0.0;
                        for (i64 n = 0; n < N; n++) {
                            const float *gp = g + ((n * O + o) * OH) * OW;
                            const float *xc = xp + (n * C + c) * Hp * Wp;
                            for (i64 oh = 0; oh < OH; oh++) {
                                const float *gr = gp + oh * OW;
                                const float *xr =
                                    xc + (oh * stride + kh) * Wp + kw;
                                float dot[4] = {0.0f, 0.0f, 0.0f, 0.0f};
                                i64 i = 0;
                                if (stride == 1) {
                                    for (; i + 4 <= OW; i += 4) {
                                        dot[0] += gr[i] * xr[i];
                                        dot[1] += gr[i + 1] * xr[i + 1];
                                        dot[2] += gr[i + 2] * xr[i + 2];
                                        dot[3] += gr[i + 3] * xr[i + 3];
                                    }
                                    for (; i < OW; i++)
                                        dot[0] += gr[i] * xr[i];
                                } else {
                                    for (; i < OW; i++)
                                        dot[0] += gr[i] * xr[i * stride];
                                }
                                acc += (double)((dot[0] + dot[1]) +
                                                (dot[2] + dot[3]));
                            }
                        }
                        gwr[kh * K + kw] = (float)acc;
                    }
                }
            }
        }
    }
    free(scratch);
}

/* ------------------------------------------------------------------ */
/* Linear: out = x @ w^T + bias.  x:(M,IN) w:(OUT,IN) out:(M,OUT).     */
/* ------------------------------------------------------------------ */
EXPORT void linear_forward(const float *x, const float *w, const float *bias,
                           float *out, i64 M, i64 IN, i64 OUT) {
    i64 m;
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
#endif
    for (m = 0; m < M; m++) {
        const float *xr = x + m * IN;
        float *orow = out + m * OUT;
        for (i64 o = 0; o < OUT; o++) {
            const float *wr = w + o * IN;
            float dot[8] = {0.0f};
            i64 i = 0;
            for (; i + 8 <= IN; i += 8)
                for (i64 j = 0; j < 8; j++)
                    dot[j] += xr[i + j] * wr[i + j];
            for (; i < IN; i++)
                dot[0] += xr[i] * wr[i];
            float acc = ((dot[0] + dot[1]) + (dot[2] + dot[3])) +
                        ((dot[4] + dot[5]) + (dot[6] + dot[7]));
            orow[o] = acc + (bias ? bias[o] : 0.0f);
        }
    }
}

/* gw = g^T @ x, gb = colsum(g), gx = g @ w. */
EXPORT void linear_backward(const float *x, const float *g, const float *w,
                            float *gx, float *gw, float *gb, i64 M, i64 IN,
                            i64 OUT) {
    i64 o, m;
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
#endif
    for (o = 0; o < OUT; o++) {
        float *gwr = gw + o * IN;
        for (i64 i = 0; i < IN; i++)
            gwr[i] = 0.0f;
        double bacc = 0.0;
        for (i64 mm = 0; mm < M; mm++) {
            const float gv = g[mm * OUT + o];
            bacc += (double)gv;
            const float *xr = x + mm * IN;
            for (i64 i = 0; i < IN; i++)
                gwr[i] += gv * xr[i];
        }
        if (gb)
            gb[o] = (float)bacc;
    }
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
#endif
    for (m = 0; m < M; m++) {
        float *gxr = gx + m * IN;
        for (i64 i = 0; i < IN; i++)
            gxr[i] = 0.0f;
        const float *gr = g + m * OUT;
        for (i64 oo = 0; oo < OUT; oo++) {
            const float gv = gr[oo];
            const float *wr = w + oo * IN;
            for (i64 i = 0; i < IN; i++)
                gxr[i] += gv * wr[i];
        }
    }
}

/* ------------------------------------------------------------------ */
/* unfold (im2col): cols:(N, C*K*K, OH*OW), padded slots get `fill`.   */
/* ------------------------------------------------------------------ */
EXPORT void unfold(const float *x, float *cols, i64 N, i64 C, i64 H, i64 W,
                   i64 K, i64 stride, i64 pad, i64 OH, i64 OW, float fill) {
    i64 n, c;
#if defined(_OPENMP)
#pragma omp parallel for collapse(2) schedule(static)
#endif
    for (n = 0; n < N; n++) {
        for (c = 0; c < C; c++) {
            const float *xpl = x + ((n * C + c) * H) * W;
            for (i64 kh = 0; kh < K; kh++) {
                for (i64 kw = 0; kw < K; kw++) {
                    float *col =
                        cols +
                        (n * C * K * K + (c * K + kh) * K + kw) * OH * OW;
                    i64 lo, hi;
                    ow_range(W, OW, stride, pad, kw, &lo, &hi);
                    const i64 base = lo * stride - pad + kw;
                    for (i64 oh = 0; oh < OH; oh++) {
                        float *dst = col + oh * OW;
                        const i64 ih = oh * stride - pad + kh;
                        if (ih < 0 || ih >= H) {
                            for (i64 i = 0; i < OW; i++)
                                dst[i] = fill;
                            continue;
                        }
                        for (i64 i = 0; i < lo; i++)
                            dst[i] = fill;
                        const float *xr = xpl + ih * W + base;
                        if (stride == 1) {
                            for (i64 i = 0; i < hi - lo; i++)
                                dst[lo + i] = xr[i];
                        } else {
                            for (i64 i = 0; i < hi - lo; i++)
                                dst[lo + i] = xr[i * stride];
                        }
                        for (i64 i = hi; i < OW; i++)
                            dst[i] = fill;
                    }
                }
            }
        }
    }
}

/* fold (col2im): adjoint scatter-add of unfold; gx is overwritten.    */
EXPORT void fold(const float *cols, float *gx, i64 N, i64 C, i64 H, i64 W,
                 i64 K, i64 stride, i64 pad, i64 OH, i64 OW) {
    i64 n, c;
#if defined(_OPENMP)
#pragma omp parallel for collapse(2) schedule(static)
#endif
    for (n = 0; n < N; n++) {
        for (c = 0; c < C; c++) {
            float *gxp = gx + ((n * C + c) * H) * W;
            memset(gxp, 0, (size_t)(H * W) * sizeof(float));
            for (i64 kh = 0; kh < K; kh++) {
                for (i64 kw = 0; kw < K; kw++) {
                    const float *col =
                        cols +
                        (n * C * K * K + (c * K + kh) * K + kw) * OH * OW;
                    i64 lo, hi;
                    ow_range(W, OW, stride, pad, kw, &lo, &hi);
                    if (hi <= lo)
                        continue;
                    const i64 len = hi - lo;
                    const i64 base = lo * stride - pad + kw;
                    for (i64 oh = 0; oh < OH; oh++) {
                        const i64 ih = oh * stride - pad + kh;
                        if (ih < 0 || ih >= H)
                            continue;
                        float *gxr = gxp + ih * W + base;
                        const float *cr = col + oh * OW + lo;
                        if (stride == 1) {
                            for (i64 i = 0; i < len; i++)
                                gxr[i] += cr[i];
                        } else {
                            for (i64 i = 0; i < len; i++)
                                gxr[i * stride] += cr[i];
                        }
                    }
                }
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* Naive bounds-checked fallbacks (allocation failure, exotic pad).    */
/* ------------------------------------------------------------------ */
static void conv2d_forward_naive(const float *x, const float *w,
                                 const float *bias, float *out, i64 N, i64 C,
                                 i64 H, i64 W, i64 O, i64 K, i64 stride,
                                 i64 pad, i64 OH, i64 OW) {
    i64 n, o;
#if defined(_OPENMP)
#pragma omp parallel for collapse(2) schedule(static)
#endif
    for (n = 0; n < N; n++) {
        for (o = 0; o < O; o++) {
            float *op = out + ((n * O + o) * OH) * OW;
            const float b = bias ? bias[o] : 0.0f;
            for (i64 i = 0; i < OH * OW; i++)
                op[i] = b;
            for (i64 c = 0; c < C; c++) {
                const float *xpl = x + ((n * C + c) * H) * W;
                const float *wp = w + ((o * C + c) * K) * K;
                for (i64 kh = 0; kh < K; kh++) {
                    for (i64 kw = 0; kw < K; kw++) {
                        const float wv = wp[kh * K + kw];
                        i64 lo, hi;
                        ow_range(W, OW, stride, pad, kw, &lo, &hi);
                        if (hi <= lo)
                            continue;
                        const i64 len = hi - lo;
                        const i64 base = lo * stride - pad + kw;
                        for (i64 oh = 0; oh < OH; oh++) {
                            const i64 ih = oh * stride - pad + kh;
                            if (ih < 0 || ih >= H)
                                continue;
                            const float *xr = xpl + ih * W + base;
                            float *orow = op + oh * OW + lo;
                            for (i64 i = 0; i < len; i++)
                                orow[i] += wv * xr[i * stride];
                        }
                    }
                }
            }
        }
    }
}

static void conv2d_backward_input_naive(const float *g, const float *w,
                                        float *gx, i64 N, i64 C, i64 H, i64 W,
                                        i64 O, i64 K, i64 stride, i64 pad,
                                        i64 OH, i64 OW) {
    i64 n, c;
#if defined(_OPENMP)
#pragma omp parallel for collapse(2) schedule(static)
#endif
    for (n = 0; n < N; n++) {
        for (c = 0; c < C; c++) {
            float *gxp = gx + ((n * C + c) * H) * W;
            memset(gxp, 0, (size_t)(H * W) * sizeof(float));
            for (i64 o = 0; o < O; o++) {
                const float *gp = g + ((n * O + o) * OH) * OW;
                const float *wp = w + ((o * C + c) * K) * K;
                for (i64 kh = 0; kh < K; kh++) {
                    for (i64 kw = 0; kw < K; kw++) {
                        const float wv = wp[kh * K + kw];
                        i64 lo, hi;
                        ow_range(W, OW, stride, pad, kw, &lo, &hi);
                        if (hi <= lo)
                            continue;
                        const i64 len = hi - lo;
                        const i64 base = lo * stride - pad + kw;
                        for (i64 oh = 0; oh < OH; oh++) {
                            const i64 ih = oh * stride - pad + kh;
                            if (ih < 0 || ih >= H)
                                continue;
                            float *gxr = gxp + ih * W + base;
                            const float *gr = gp + oh * OW + lo;
                            for (i64 i = 0; i < len; i++)
                                gxr[i * stride] += wv * gr[i];
                        }
                    }
                }
            }
        }
    }
}

static void conv2d_backward_weight_naive(const float *x, const float *g,
                                         float *gw, float *gb, i64 N, i64 C,
                                         i64 H, i64 W, i64 O, i64 K,
                                         i64 stride, i64 pad, i64 OH,
                                         i64 OW) {
    i64 o;
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
#endif
    for (o = 0; o < O; o++) {
        if (gb) {
            double bacc = 0.0;
            for (i64 n = 0; n < N; n++) {
                const float *gp = g + ((n * O + o) * OH) * OW;
                for (i64 i = 0; i < OH * OW; i++)
                    bacc += (double)gp[i];
            }
            gb[o] = (float)bacc;
        }
        for (i64 c = 0; c < C; c++) {
            for (i64 kh = 0; kh < K; kh++) {
                for (i64 kw = 0; kw < K; kw++) {
                    i64 lo, hi;
                    ow_range(W, OW, stride, pad, kw, &lo, &hi);
                    const i64 len = hi - lo;
                    const i64 base = lo * stride - pad + kw;
                    double acc = 0.0;
                    if (len > 0) {
                        for (i64 n = 0; n < N; n++) {
                            const float *gp = g + ((n * O + o) * OH) * OW;
                            const float *xpl = x + ((n * C + c) * H) * W;
                            for (i64 oh = 0; oh < OH; oh++) {
                                const i64 ih = oh * stride - pad + kh;
                                if (ih < 0 || ih >= H)
                                    continue;
                                const float *gr = gp + oh * OW + lo;
                                const float *xr = xpl + ih * W + base;
                                float dot = 0.0f;
                                for (i64 i = 0; i < len; i++)
                                    dot += gr[i] * xr[i * stride];
                                acc += (double)dot;
                            }
                        }
                    }
                    gw[((o * C + c) * K + kh) * K + kw] = (float)acc;
                }
            }
        }
    }
}
