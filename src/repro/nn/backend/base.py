"""Backend protocol, registry and selection context for tensor ops.

Every heavy tensor primitive of the layer framework — im2col+GEMM
convolution, linear GEMMs, pooling unfold/fold, the attention einsums
and the batch-norm moment reductions — dispatches through the active
:class:`Backend`.  Layers never call ``np.einsum`` / ``np.matmul`` on
the hot path directly; they ask :func:`current_backend` (or the context
that produced their forward cache) so an alternative substrate is a
one-argument change.

Selection works at three levels, innermost wins:

1. global default — :func:`use_backend` (also usable as a context
   manager that restores the previous default on exit);
2. dynamic scope — :func:`backend_scope`, which the
   :class:`~repro.core.engine.engine.TrainingEngine` enters around every
   batch with its configured backend;
3. per-:class:`~repro.core.engine.strategies.PhaseStrategy` override,
   which the engine prefers over its own backend, so e.g. a GP-phase
   forward-only stream can run fused while BP batches stay on the
   reference backend.

Registering a third backend is :func:`register_backend` plus a subclass
overriding whichever ops the new substrate accelerates (see DESIGN.md
§7).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Union

import numpy as np

from .. import functional as F

BackendSpec = Union[str, "Backend"]


@dataclass
class ConvCtx:
    """Forward context a backend hands to its own ``conv2d_backward``.

    ``backend`` pins backward to the backend that produced the context,
    so switching the active backend between a layer's forward and
    backward (phase-level overrides) stays correct.  ``pooled`` marks
    ``cols`` as a workspace-pool buffer that backward (or
    :meth:`release`, via ``Module.clear_caches``) returns for reuse.
    """

    backend: "Backend"
    cols: np.ndarray
    x_shape: tuple[int, ...]
    kernel: int
    stride: int
    padding: int
    pooled: bool = False
    released: bool = False

    def release(self) -> None:
        """Return the cols workspace to the backend pool (idempotent)."""
        if self.pooled and not self.released:
            self.released = True
            self.backend.release(self.cols)


class Backend:
    """Abstract op set; concrete backends override everything below.

    The reference implementation is :class:`~.numpy_backend.NumpyBackend`
    (the pre-refactor layer code, moved verbatim);
    :class:`~.fused.FusedBackend` overrides the GEMM-shaped ops with
    reshaped BLAS ``matmul``, cached contraction paths and an im2col
    workspace pool.
    """

    name: str = "abstract"

    # -- workspace management (real pooling only in FusedBackend) -------
    def acquire_cols(
        self, shape: tuple[int, ...], dtype: np.dtype
    ) -> Optional[np.ndarray]:
        """A reusable cols-shaped scratch buffer, or ``None`` to make the
        caller allocate (the reference behaviour)."""
        return None

    def release(self, array: np.ndarray) -> None:
        """Return a buffer obtained from :meth:`acquire_cols`; no-op by
        default."""

    def clear_workspaces(self) -> None:
        """Drop all pooled scratch buffers; no-op by default."""

    def reset_stats(self) -> None:
        """Reset workspace/bench counters; no-op by default."""

    # -- no-grad graph rewriting -----------------------------------------
    def fold_pipeline(self):
        """The :class:`~repro.nn.passes.PassPipeline` this backend wants
        applied to no-grad ``Sequential`` forwards, or ``None`` to keep
        the exact layer-by-layer semantics (the reference behaviour)."""
        return None

    # -- unfold / fold (conv and pooling columns) ------------------------
    def unfold(
        self,
        x: np.ndarray,
        kernel: int,
        stride: int,
        padding: int,
        fill_value: float = 0.0,
    ) -> tuple[np.ndarray, int, int]:
        raise NotImplementedError

    def fold(
        self,
        cols: np.ndarray,
        input_shape: tuple[int, int, int, int],
        kernel: int,
        stride: int,
        padding: int,
    ) -> np.ndarray:
        raise NotImplementedError

    # -- convolution -----------------------------------------------------
    def conv2d_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int,
        padding: int,
    ) -> tuple[np.ndarray, ConvCtx]:
        raise NotImplementedError

    def conv2d_backward(
        self,
        grad_out: np.ndarray,
        weight: np.ndarray,
        ctx: ConvCtx,
        with_bias: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        raise NotImplementedError

    # -- linear ----------------------------------------------------------
    def linear_forward(
        self, x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]
    ) -> np.ndarray:
        raise NotImplementedError

    def linear_backward(
        self,
        x: np.ndarray,
        grad_out: np.ndarray,
        weight: np.ndarray,
        with_bias: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        raise NotImplementedError

    # -- attention contractions ------------------------------------------
    def attn_scores(self, q: np.ndarray, k: np.ndarray) -> np.ndarray:
        """``bhqd,bhkd->bhqk`` (scores forward, d_attn backward)."""
        raise NotImplementedError

    def attn_context(self, p: np.ndarray, v: np.ndarray) -> np.ndarray:
        """``bhqk,bhkd->bhqd`` (context forward, d_q backward)."""
        raise NotImplementedError

    def attn_context_t(self, p: np.ndarray, g: np.ndarray) -> np.ndarray:
        """``bhqk,bhqd->bhkd`` (d_v and d_k backward)."""
        raise NotImplementedError

    # -- normalization moments -------------------------------------------
    def moments(
        self,
        x: np.ndarray,
        axes: Union[int, tuple[int, ...]],
        keepdims: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(mean, biased variance) reduced over ``axes``."""
        raise NotImplementedError

    # -- adaptive pooling -------------------------------------------------
    def adaptive_avg_pool2d(
        self, x: np.ndarray, out_hw: tuple[int, int]
    ) -> np.ndarray:
        return F.adaptive_avg_pool2d(x, out_hw)

    def adaptive_avg_pool2d_backward(
        self, grad_out: np.ndarray, input_shape: tuple[int, int, int, int]
    ) -> np.ndarray:
        return F.adaptive_avg_pool2d_backward(grad_out, input_shape)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
_FACTORIES: dict[str, Callable[[], Backend]] = {}
_INSTANCES: dict[str, Backend] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register a backend under ``name`` (lazily instantiated singleton)."""
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def list_backends() -> list[str]:
    return sorted(_FACTORIES)


def get_backend(name: str) -> Backend:
    """The singleton backend registered under ``name``."""
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown backend {name!r}; registered: {list_backends()}"
        )
    if name not in _INSTANCES:
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


def reset_backend_stats() -> None:
    """Reset the bench counters of every backend alive in this process:
    instantiated registry singletons, the global default and any active
    scope overrides (ad-hoc instances passed to ``use_backend`` /
    ``backend_scope`` are not in ``_INSTANCES``)."""
    seen: set[int] = set()
    candidates = [*_INSTANCES.values(), _default_backend, *_override_stack]
    for backend in candidates:
        if backend is not None and id(backend) not in seen:
            seen.add(id(backend))
            backend.reset_stats()


def resolve_backend(spec: Optional[BackendSpec]) -> Optional[Backend]:
    """Resolve a name / instance / ``None`` to a backend (or ``None``)."""
    if spec is None or isinstance(spec, Backend):
        return spec
    return get_backend(spec)


# ----------------------------------------------------------------------
# Selection: a mutable global default plus a dynamic override stack.
# ----------------------------------------------------------------------
_default_backend: Optional[Backend] = None
_override_stack: list[Backend] = []


def current_backend() -> Backend:
    """The backend ops dispatch to right now (innermost scope wins)."""
    if _override_stack:
        return _override_stack[-1]
    global _default_backend
    if _default_backend is None:
        _default_backend = get_backend("numpy")
    return _default_backend


class _UseBackend:
    """Handle returned by :func:`use_backend`: the change is already
    global; entering it as a context manager restores the previous
    default on exit."""

    def __init__(self, previous: Optional[Backend], active: Backend) -> None:
        self._previous = previous
        self.backend = active

    def __enter__(self) -> Backend:
        return self.backend

    def __exit__(self, *exc_info) -> None:
        global _default_backend
        _default_backend = self._previous


def use_backend(spec: BackendSpec) -> _UseBackend:
    """Set the global default backend; ``with use_backend("fused"):``
    additionally restores the previous default when the block exits."""
    global _default_backend
    previous = _default_backend
    backend = resolve_backend(spec)
    _default_backend = backend
    return _UseBackend(previous, backend)


@contextmanager
def backend_scope(spec: Optional[BackendSpec]) -> Iterator[Optional[Backend]]:
    """Dynamically scoped backend override; ``None`` is a no-op scope
    (inherit whatever is active), which lets engines wrap every batch
    unconditionally."""
    backend = resolve_backend(spec)
    if backend is None:
        yield None
        return
    _override_stack.append(backend)
    try:
        yield backend
    finally:
        _override_stack.pop()
