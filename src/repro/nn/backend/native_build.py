"""Build + load machinery for the native (compiled C) backend kernels.

The kernels live in ``_native/kernels.c`` and are compiled on demand
into ``_native/build/kernels-<hash>.so``, where ``<hash>`` digests the
source text plus the exact compiler command line — so editing the C
file, changing ``CC`` or bumping the flag set each produce a fresh
artifact while repeat builds (and CI caches keyed on the same hash) are
a single ``stat`` call.  There is no hard dependency on a toolchain:
when no compiler is found (or ``REPRO_NATIVE=0`` disables the whole
path) :func:`available` reports ``False`` and callers fall back to the
pure-Python backends.

Usage::

    python -m repro.nn.backend.native_build        # build (cached)
    python -m repro.nn.backend.native_build --force

or programmatically :func:`build` / :func:`load` /
:func:`available`.  ``setup.py build_native`` wraps the same entry
point.

The compile is deliberately conservative: ``-O3 -march=native`` with
``-ffp-contract=fast`` but *without* ``-ffast-math`` — linking
crtfastmath.o from a shared library would flip the process-wide
FTZ/DAZ floating-point flags underneath NumPy.  ``-fopenmp`` is probed
and dropped when the toolchain lacks it.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Optional

_NATIVE_DIR = Path(__file__).resolve().parent / "_native"
SOURCE = _NATIVE_DIR / "kernels.c"
BUILD_DIR = _NATIVE_DIR / "build"

# Bump to invalidate every cached artifact regardless of source hash.
BUILD_TAG = "1"

_BASE_FLAGS = [
    "-O3",
    "-march=native",
    "-funroll-loops",
    "-ffp-contract=fast",
    "-fPIC",
    "-shared",
    "-std=c99",
]


class NativeBuildError(RuntimeError):
    """The native extension could not be built or loaded."""


def _disabled() -> bool:
    return os.environ.get("REPRO_NATIVE", "1") == "0"


def find_compiler() -> Optional[str]:
    """The C compiler to use (``$CC``, else gcc/cc/clang), or ``None``."""
    cc = os.environ.get("CC")
    if cc:
        return cc if shutil.which(cc) else None
    for candidate in ("gcc", "cc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


def _command(cc: str, openmp: bool) -> list[str]:
    flags = list(_BASE_FLAGS)
    if openmp:
        flags.append("-fopenmp")
    return [cc, *flags]


def source_hash(cc: str, openmp: bool) -> str:
    """Digest of the kernel source + full compiler command line."""
    digest = hashlib.sha256()
    digest.update(SOURCE.read_bytes())
    digest.update(" ".join(_command(cc, openmp)).encode())
    digest.update(BUILD_TAG.encode())
    return digest.hexdigest()[:16]


def lib_path(cc: str, openmp: bool) -> Path:
    return BUILD_DIR / f"kernels-{source_hash(cc, openmp)}.so"


def _compile(cc: str, openmp: bool) -> Path:
    out = lib_path(cc, openmp)
    if out.exists():
        return out
    BUILD_DIR.mkdir(parents=True, exist_ok=True)
    # Compile to a temp file then os.replace: concurrent builders
    # (pytest-xdist, parallel CI shards) race benignly to an atomic
    # rename instead of loading a half-written object.
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=BUILD_DIR)
    os.close(fd)
    try:
        proc = subprocess.run(
            [*_command(cc, openmp), "-o", tmp, str(SOURCE)],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise NativeBuildError(
                f"compiling {SOURCE.name} with {cc!r} failed:\n{proc.stderr}"
            )
        os.replace(tmp, out)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return out


def build(force: bool = False) -> Path:
    """Compile the kernels (cached on source hash); return the .so path.

    Probes ``-fopenmp`` first and falls back to a single-threaded build
    when the toolchain rejects it.  Raises :class:`NativeBuildError`
    when disabled via ``REPRO_NATIVE=0``, no compiler is found, or both
    compiles fail.
    """
    if _disabled():
        raise NativeBuildError("native backend disabled via REPRO_NATIVE=0")
    if not SOURCE.exists():
        raise NativeBuildError(f"kernel source missing: {SOURCE}")
    cc = find_compiler()
    if cc is None:
        raise NativeBuildError(
            "no C compiler found (set $CC or install gcc/clang)"
        )
    if force:
        for stale in BUILD_DIR.glob("kernels-*.so"):
            stale.unlink(missing_ok=True)
    try:
        return _compile(cc, openmp=True)
    except NativeBuildError:
        return _compile(cc, openmp=False)


_I64 = ctypes.c_int64
_PTR = ctypes.c_void_p
_F32 = ctypes.c_float

_SIGNATURES = {
    # name -> (n_pointer_args, n_i64_dims, trailing_float_args)
    "conv2d_forward": (4, 10, 0),
    "conv2d_backward_input": (3, 10, 0),
    "conv2d_backward_weight": (4, 10, 0),
    "linear_forward": (4, 3, 0),
    "linear_backward": (6, 3, 0),
    "unfold": (2, 9, 1),
    "fold": (2, 9, 0),
}


def _configure(lib: ctypes.CDLL) -> ctypes.CDLL:
    for name, (n_ptr, n_dim, n_f32) in _SIGNATURES.items():
        fn = getattr(lib, name)
        fn.argtypes = [_PTR] * n_ptr + [_I64] * n_dim + [_F32] * n_f32
        fn.restype = None
    return lib


_LIB: Optional[ctypes.CDLL] = None


def load(force: bool = False) -> ctypes.CDLL:
    """Build if needed and load the shared library (process singleton)."""
    global _LIB
    if _LIB is None or force:
        _LIB = _configure(ctypes.CDLL(str(build(force=force))))
    return _LIB


def available() -> bool:
    """True when the native kernels can be built and loaded here."""
    if _disabled():
        return False
    try:
        load()
    except (NativeBuildError, OSError):
        return False
    return True


def main(argv: Optional[list[str]] = None) -> int:
    """CLI: build the extension, print the artifact path."""
    args = sys.argv[1:] if argv is None else argv
    force = "--force" in args
    try:
        path = build(force=force)
    except NativeBuildError as exc:
        print(f"native build failed: {exc}", file=sys.stderr)
        return 1
    print(path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
