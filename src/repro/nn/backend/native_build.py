"""Build + load machinery for the native (compiled C) backend kernels.

The kernels live in ``_native/kernels.c`` and are compiled on demand
into ``_native/build/kernels-<hash>.so``, where ``<hash>`` digests the
source text plus the exact compiler command line — so editing the C
file, changing ``CC`` or bumping the flag set each produce a fresh
artifact while repeat builds (and CI caches keyed on the same hash) are
a single ``stat`` call.  There is no hard dependency on a toolchain:
when no compiler is found (or ``REPRO_NATIVE=0`` disables the whole
path) :func:`available` reports ``False`` and callers fall back to the
pure-Python backends.

Usage::

    python -m repro.nn.backend.native_build        # build (cached)
    python -m repro.nn.backend.native_build --force

or programmatically :func:`build` / :func:`load` /
:func:`available`.  ``setup.py build_native`` wraps the same entry
point.

The compile is deliberately conservative: ``-O3 -march=native`` with
``-ffp-contract=fast`` but *without* ``-ffast-math`` — linking
crtfastmath.o from a shared library would flip the process-wide
FTZ/DAZ floating-point flags underneath NumPy.  ``-fopenmp`` is probed
and dropped when the toolchain lacks it.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Optional

_NATIVE_DIR = Path(__file__).resolve().parent / "_native"
SOURCE = _NATIVE_DIR / "kernels.c"
BUILD_DIR = _NATIVE_DIR / "build"

# Bump to invalidate every cached artifact regardless of source hash.
BUILD_TAG = "1"

_BASE_FLAGS = [
    "-O3",
    "-march=native",
    "-funroll-loops",
    "-ffp-contract=fast",
    "-fPIC",
    "-shared",
    "-std=c99",
]

# ``REPRO_NATIVE_SANITIZE=1`` builds an ASan/UBSan-instrumented variant
# with its own artifact tag.  Loading it into a non-instrumented Python
# needs the ASan runtime preloaded, e.g.:
#   LD_PRELOAD=$(gcc -print-file-name=libasan.so) ASAN_OPTIONS=detect_leaks=0
# (CPython itself "leaks" interned objects at exit; leak detection off.)
_SANITIZE_FLAGS = [
    "-fsanitize=address,undefined",
    "-fno-omit-frame-pointer",
]


class NativeBuildError(RuntimeError):
    """The native extension could not be built or loaded."""


def _disabled() -> bool:
    return os.environ.get("REPRO_NATIVE", "1") == "0"


def sanitize_enabled() -> bool:
    """Whether ``REPRO_NATIVE_SANITIZE=1`` selects the ASan/UBSan build."""
    return os.environ.get("REPRO_NATIVE_SANITIZE", "0") == "1"


def find_compiler() -> Optional[str]:
    """The C compiler to use (``$CC``, else gcc/cc/clang), or ``None``."""
    cc = os.environ.get("CC")
    if cc:
        return cc if shutil.which(cc) else None
    for candidate in ("gcc", "cc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


def _command(cc: str, openmp: bool, sanitize: bool = False) -> list[str]:
    flags = list(_BASE_FLAGS)
    if sanitize:
        flags.extend(_SANITIZE_FLAGS)
    if openmp:
        flags.append("-fopenmp")
    return [cc, *flags]


def source_hash(cc: str, openmp: bool, sanitize: bool = False) -> str:
    """Digest of the kernel source + full compiler command line."""
    digest = hashlib.sha256()
    digest.update(SOURCE.read_bytes())
    digest.update(" ".join(_command(cc, openmp, sanitize)).encode())
    digest.update(BUILD_TAG.encode())
    return digest.hexdigest()[:16]


def lib_path(cc: str, openmp: bool, sanitize: bool = False) -> Path:
    # The -san suffix is cosmetic (the hash already covers the flags)
    # but keeps instrumented artifacts recognisable in the build dir.
    suffix = "-san" if sanitize else ""
    return BUILD_DIR / f"kernels-{source_hash(cc, openmp, sanitize)}{suffix}.so"


def _compile(cc: str, openmp: bool, sanitize: bool = False) -> Path:
    out = lib_path(cc, openmp, sanitize)
    if out.exists():
        return out
    BUILD_DIR.mkdir(parents=True, exist_ok=True)
    # Compile to a temp file then os.replace: concurrent builders
    # (pytest-xdist, parallel CI shards) race benignly to an atomic
    # rename instead of loading a half-written object.
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=BUILD_DIR)
    os.close(fd)
    try:
        proc = subprocess.run(
            [*_command(cc, openmp, sanitize), "-o", tmp, str(SOURCE)],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise NativeBuildError(
                f"compiling {SOURCE.name} with {cc!r} failed:\n{proc.stderr}"
            )
        os.replace(tmp, out)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return out


def build(force: bool = False, sanitize: Optional[bool] = None) -> Path:
    """Compile the kernels (cached on source hash); return the .so path.

    Probes ``-fopenmp`` first and falls back to a single-threaded build
    when the toolchain rejects it.  ``sanitize`` defaults to
    ``REPRO_NATIVE_SANITIZE=1`` and selects the ASan/UBSan variant.
    Raises :class:`NativeBuildError` when disabled via
    ``REPRO_NATIVE=0``, no compiler is found, or both compiles fail.
    """
    if _disabled():
        raise NativeBuildError("native backend disabled via REPRO_NATIVE=0")
    if not SOURCE.exists():
        raise NativeBuildError(f"kernel source missing: {SOURCE}")
    cc = find_compiler()
    if cc is None:
        raise NativeBuildError(
            "no C compiler found (set $CC or install gcc/clang)"
        )
    if sanitize is None:
        sanitize = sanitize_enabled()
    if force:
        for stale in BUILD_DIR.glob("kernels-*.so"):
            stale.unlink(missing_ok=True)
    try:
        return _compile(cc, openmp=True, sanitize=sanitize)
    except NativeBuildError:
        return _compile(cc, openmp=False, sanitize=sanitize)


_I64 = ctypes.c_int64
_PTR = ctypes.c_void_p
_F32 = ctypes.c_float

_SIGNATURES = {
    # name -> (n_pointer_args, n_i64_dims, trailing_float_args)
    "conv2d_forward": (4, 10, 0),
    "conv2d_backward_input": (3, 10, 0),
    "conv2d_backward_weight": (4, 10, 0),
    "linear_forward": (4, 3, 0),
    "linear_backward": (6, 3, 0),
    "unfold": (2, 9, 1),
    "fold": (2, 9, 0),
}


def _configure(lib: ctypes.CDLL) -> ctypes.CDLL:
    for name, (n_ptr, n_dim, n_f32) in _SIGNATURES.items():
        fn = getattr(lib, name)
        fn.argtypes = [_PTR] * n_ptr + [_I64] * n_dim + [_F32] * n_f32
        fn.restype = None
    return lib


# One loaded library per build variant (plain / sanitized).
_LIBS: dict[bool, ctypes.CDLL] = {}


def load(force: bool = False, sanitize: Optional[bool] = None) -> ctypes.CDLL:
    """Build if needed and load the shared library (per-variant singleton)."""
    if sanitize is None:
        sanitize = sanitize_enabled()
    if force or sanitize not in _LIBS:
        _LIBS[sanitize] = _configure(
            ctypes.CDLL(str(build(force=force, sanitize=sanitize)))
        )
    return _LIBS[sanitize]


def available() -> bool:
    """True when the native kernels can be built and loaded here."""
    if _disabled():
        return False
    try:
        load()
    except (NativeBuildError, OSError):
        return False
    return True


def main(argv: Optional[list[str]] = None) -> int:
    """CLI: build the extension, print the artifact path."""
    args = sys.argv[1:] if argv is None else argv
    force = "--force" in args
    sanitize = True if "--sanitize" in args else None
    try:
        path = build(force=force, sanitize=sanitize)
    except NativeBuildError as exc:
        print(f"native build failed: {exc}", file=sys.stderr)
        return 1
    print(path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
