"""Loss functions.

Every loss is a callable returning ``(loss_value, grad_wrt_input)`` so
trainers can feed the gradient straight into ``model.backward``.  Each
also exposes ``value(prediction, target)`` computing only the scalar —
the entry point for forward-only consumers (Phase-GP monitoring,
``engine.evaluate``) that would otherwise pay for a full-size gradient
tensor just to throw it away; :func:`loss_value` dispatches to it with a
fallback for ad-hoc callables that only implement the pair form.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F


class CrossEntropyLoss:
    """Softmax cross entropy over logits with integer class targets.

    Supports 2-D logits ``(batch, classes)`` and 3-D logits
    ``(batch, seq, classes)`` with an optional ``ignore_index`` for padded
    positions (Transformer training).
    """

    def __init__(self, ignore_index: Optional[int] = None) -> None:
        self.ignore_index = ignore_index

    def _picked_log_probs(
        self, logits: np.ndarray, targets: np.ndarray
    ) -> tuple:
        """Shared forward math for :meth:`value` and :meth:`__call__`.

        Returns ``(log_probs, picked, safe_targets, valid, count)``.
        When every position is ignored (``count == 0``) the three array
        slots are ``None`` — unusable by construction, so callers must
        take their empty-batch path.
        """
        num_classes = logits.shape[-1]
        flat_logits = logits.reshape(-1, num_classes)
        flat_targets = np.asarray(targets).reshape(-1)
        if flat_targets.shape[0] != flat_logits.shape[0]:
            raise ValueError(
                f"targets shape {targets.shape} incompatible with logits "
                f"shape {logits.shape}"
            )
        if self.ignore_index is not None:
            valid = flat_targets != self.ignore_index
        else:
            valid = np.ones(flat_targets.shape[0], dtype=bool)
        count = int(valid.sum())
        if count == 0:
            return None, None, None, valid, count
        log_probs = F.log_softmax(flat_logits, axis=-1)
        safe_targets = np.where(valid, flat_targets, 0)
        picked = log_probs[np.arange(flat_targets.shape[0]), safe_targets]
        return log_probs, picked, safe_targets, valid, count

    def value(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """Scalar loss only — no gradient tensor is ever allocated."""
        _, picked, _, valid, count = self._picked_log_probs(logits, targets)
        if count == 0:
            return 0.0
        return -float(picked[valid].mean())

    def __call__(
        self, logits: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        orig_shape = logits.shape
        log_probs, picked, safe_targets, valid, count = self._picked_log_probs(
            logits, targets
        )
        if count == 0:
            return 0.0, np.zeros(orig_shape, dtype=np.float32)
        loss = -float(picked[valid].mean())
        probs = np.exp(log_probs)
        grad = probs
        grad[np.arange(safe_targets.shape[0]), safe_targets] -= 1.0
        grad[~valid] = 0.0
        grad /= count
        return loss, grad.reshape(orig_shape).astype(np.float32)


class MSELoss:
    """Mean squared error; used to train the gradient predictor."""

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} != target shape {target.shape}"
            )
        diff = prediction - target
        return float(np.mean(diff**2))

    def __call__(
        self, prediction: np.ndarray, target: np.ndarray
    ) -> tuple[float, np.ndarray]:
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} != target shape {target.shape}"
            )
        diff = prediction - target
        loss = float(np.mean(diff**2))
        grad = (2.0 / diff.size) * diff
        return loss, grad.astype(np.float32)


class SmoothL1Loss:
    """Huber-style loss used by the detection head."""

    def __init__(self, beta: float = 1.0) -> None:
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = beta

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} != target shape {target.shape}"
            )
        diff = prediction - target
        abs_diff = np.abs(diff)
        losses = np.where(
            abs_diff < self.beta,
            0.5 * diff**2 / self.beta,
            abs_diff - 0.5 * self.beta,
        )
        return float(losses.mean())

    def __call__(
        self, prediction: np.ndarray, target: np.ndarray
    ) -> tuple[float, np.ndarray]:
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} != target shape {target.shape}"
            )
        diff = prediction - target
        abs_diff = np.abs(diff)
        quad = abs_diff < self.beta
        losses = np.where(
            quad, 0.5 * diff**2 / self.beta, abs_diff - 0.5 * self.beta
        )
        loss = float(losses.mean())
        grad = np.where(quad, diff / self.beta, np.sign(diff)) / diff.size
        return loss, grad.astype(np.float32)


class BCEWithLogitsLoss:
    """Sigmoid + binary cross entropy, numerically stable."""

    def value(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.shape != targets.shape:
            raise ValueError(
                f"logits shape {logits.shape} != targets shape {targets.shape}"
            )
        losses = (
            np.maximum(logits, 0.0)
            - logits * targets
            + np.log1p(np.exp(-np.abs(logits)))
        )
        return float(losses.mean())

    def __call__(
        self, logits: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        if logits.shape != targets.shape:
            raise ValueError(
                f"logits shape {logits.shape} != targets shape {targets.shape}"
            )
        # log(1 + exp(-|x|)) formulation avoids overflow.
        losses = (
            np.maximum(logits, 0.0)
            - logits * targets
            + np.log1p(np.exp(-np.abs(logits)))
        )
        loss = float(losses.mean())
        grad = (F.sigmoid(logits) - targets) / logits.size
        return loss, grad.astype(np.float32)


def loss_value(loss_fn, outputs: np.ndarray, targets: np.ndarray) -> float:
    """Scalar loss from any loss callable, cheapest path available.

    Uses the loss's ``value`` method when it has one (no gradient tensor
    is allocated); ad-hoc ``(loss, grad)`` callables — custom lambdas in
    tests and experiments — fall back to computing and discarding the
    gradient, which keeps this a drop-in for every ``LossFn``.
    """
    value = getattr(loss_fn, "value", None)
    if callable(value):
        return float(value(outputs, targets))
    loss, _ = loss_fn(outputs, targets)
    return float(loss)


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy in percent for (batch, classes) logits."""
    predictions = logits.argmax(axis=-1)
    return float((predictions == np.asarray(targets)).mean() * 100.0)
