"""Weight initializers.

All initializers take an explicit ``rng`` so every model build is
reproducible; :mod:`repro.models` threads a seeded generator through.
"""

from __future__ import annotations

import numpy as np


def kaiming_uniform(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He/Kaiming uniform initialization, the default for conv/linear."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    bound = float(np.sqrt(6.0 / fan_in))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_normal(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He/Kaiming normal initialization."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    std = float(np.sqrt(2.0 / fan_in))
    return (rng.standard_normal(size=shape) * std).astype(np.float32)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialization, used for attention/embeddings."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    bound = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
