"""Weight initializers and the default per-layer rng policy.

All initializers take an explicit ``rng`` so every model build is
reproducible; :mod:`repro.models` threads a seeded generator through.

Layers constructed *without* an rng draw one from a module-level
:class:`numpy.random.SeedSequence` via :func:`layer_rng`: each layer
gets its own spawned child stream, so two same-shape layers built
without an rng never initialize bit-identically (previously every such
layer used a fresh ``default_rng(0)``, which made e.g. the q/k/v/out
projections of ``MultiHeadAttention`` exact copies of each other), while
construction order alone still fully determines the weights.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

_layer_seed_sequence = np.random.SeedSequence(0)


def layer_rng(rng: Optional[np.random.Generator] = None) -> np.random.Generator:
    """Return ``rng`` unchanged, or a fresh per-layer default generator.

    The default path spawns a child of the module-level seed sequence,
    so every call yields an independent, deterministic stream.
    """
    if rng is not None:
        return rng
    return np.random.default_rng(_layer_seed_sequence.spawn(1)[0])


def reset_layer_rng(seed: int = 0) -> None:
    """Restart the module-level seed sequence (reproducible test setups)."""
    global _layer_seed_sequence
    _layer_seed_sequence = np.random.SeedSequence(seed)


def kaiming_uniform(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He/Kaiming uniform initialization, the default for conv/linear."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    bound = float(np.sqrt(6.0 / fan_in))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_normal(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He/Kaiming normal initialization."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    std = float(np.sqrt(2.0 / fan_in))
    return (rng.standard_normal(size=shape) * std).astype(np.float32)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialization, used for attention/embeddings."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    bound = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
