"""Token embedding and sinusoidal positional encoding for the Transformer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import init
from ..module import (
    NO_GRAD,
    Module,
    Parameter,
    check_backward_cache,
    is_grad_enabled,
)


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = init.layer_rng(rng)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            (rng.standard_normal((num_embeddings, embedding_dim)) * 0.02).astype(
                np.float32
            ),
            name="weight",
        )
        self._cache_ids: Optional[np.ndarray] = None

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        token_ids = np.asarray(token_ids)
        if token_ids.min(initial=0) < 0 or token_ids.max(initial=0) >= self.num_embeddings:
            raise ValueError(
                f"token ids out of range [0, {self.num_embeddings}): "
                f"[{token_ids.min()}, {token_ids.max()}]"
            )
        self._cache_ids = token_ids if is_grad_enabled() else NO_GRAD
        return self.weight.data[token_ids]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._cache_ids, self)
        grad_w = np.zeros_like(self.weight.data)
        flat_ids = self._cache_ids.reshape(-1)
        flat_grad = grad_out.reshape(-1, self.embedding_dim)
        np.add.at(grad_w, flat_ids, flat_grad)
        self.weight.accumulate_grad(grad_w)
        # Token ids are not differentiable; return a zero placeholder.
        return np.zeros(self._cache_ids.shape, dtype=np.float32)


class PositionalEncoding(Module):
    """Add fixed sinusoidal position encodings (Vaswani et al. 2017)."""

    def __init__(self, d_model: int, max_len: int = 512) -> None:
        super().__init__()
        self.d_model = d_model
        position = np.arange(max_len, dtype=np.float32)[:, None]
        div_term = np.exp(
            np.arange(0, d_model, 2, dtype=np.float32) * (-np.log(10000.0) / d_model)
        )
        table = np.zeros((max_len, d_model), dtype=np.float32)
        table[:, 0::2] = np.sin(position * div_term)
        table[:, 1::2] = np.cos(position * div_term)
        self.table = table

    def forward(self, x: np.ndarray) -> np.ndarray:
        seq_len = x.shape[1]
        if seq_len > self.table.shape[0]:
            raise ValueError(
                f"sequence length {seq_len} exceeds max_len {self.table.shape[0]}"
            )
        return x + self.table[None, :seq_len]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out
