"""Elementwise activation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import functional as F
from ..module import NO_GRAD, Module, check_backward_cache, is_grad_enabled


class ReLU(Module):
    _extra_cache_attrs = ("_mask",)

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not is_grad_enabled():
            # No mask materialized at all in forward-only streams.
            self._mask = NO_GRAD
            return np.maximum(x, 0.0)
        self._mask = x > 0.0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._mask, self)
        return np.where(self._mask, grad_out, 0.0)


class LeakyReLU(Module):
    _extra_cache_attrs = ("_mask",)

    def __init__(self, slope: float = 0.1) -> None:
        super().__init__()
        self.slope = slope
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not is_grad_enabled():
            self._mask = NO_GRAD
            return np.where(x > 0.0, x, self.slope * x)
        self._mask = x > 0.0
        return np.where(self._mask, x, self.slope * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._mask, self)
        return np.where(self._mask, grad_out, self.slope * grad_out)


class ReLU6(Module):
    """min(max(x, 0), 6) — the MobileNet activation."""

    _extra_cache_attrs = ("_mask",)

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not is_grad_enabled():
            self._mask = NO_GRAD
            return np.clip(x, 0.0, 6.0)
        self._mask = (x > 0.0) & (x < 6.0)
        return np.clip(x, 0.0, 6.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._mask, self)
        return np.where(self._mask, grad_out, 0.0)


class Sigmoid(Module):
    _extra_cache_attrs = ("_out",)

    def __init__(self) -> None:
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = F.sigmoid(x)
        self._out = out if is_grad_enabled() else NO_GRAD
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._out, self)
        return grad_out * self._out * (1.0 - self._out)


class Tanh(Module):
    _extra_cache_attrs = ("_out",)

    def __init__(self) -> None:
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.tanh(x)
        self._out = out if is_grad_enabled() else NO_GRAD
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._out, self)
        return grad_out * (1.0 - self._out**2)


class GELU(Module):
    """Gaussian error linear unit (tanh approximation), used by Transformer."""

    _extra_cache_attrs = ("_x",)

    _C = 0.7978845608028654  # sqrt(2/pi)

    def __init__(self) -> None:
        super().__init__()
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x if is_grad_enabled() else NO_GRAD
        inner = self._C * (x + 0.044715 * x**3)
        return 0.5 * x * (1.0 + np.tanh(inner))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._x, self)
        x = self._x
        inner = self._C * (x + 0.044715 * x**3)
        tanh_inner = np.tanh(inner)
        sech2 = 1.0 - tanh_inner**2
        d_inner = self._C * (1.0 + 3 * 0.044715 * x**2)
        grad = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
        return grad_out * grad
