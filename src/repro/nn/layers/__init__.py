"""Layer catalogue of the NumPy DNN framework."""

from .activations import GELU, LeakyReLU, ReLU, ReLU6, Sigmoid, Tanh
from .attention import MultiHeadAttention, causal_mask, padding_mask
from .blocks import ConcatBranches, DenseConcat, Residual, conv_bn_relu
from .core import Conv2d, Flatten, Identity, Linear, Sequential, sequential_of
from .embedding import Embedding, PositionalEncoding
from .norm import BatchNorm1d, BatchNorm2d, Dropout, LayerNorm
from .pooling import AdaptiveAvgPool2d, AvgPool2d, GlobalAvgPool2d, MaxPool2d

__all__ = [
    "GELU",
    "LeakyReLU",
    "ReLU",
    "ReLU6",
    "Sigmoid",
    "Tanh",
    "MultiHeadAttention",
    "causal_mask",
    "padding_mask",
    "ConcatBranches",
    "DenseConcat",
    "Residual",
    "conv_bn_relu",
    "Conv2d",
    "Flatten",
    "Identity",
    "Linear",
    "Sequential",
    "sequential_of",
    "Embedding",
    "PositionalEncoding",
    "BatchNorm1d",
    "BatchNorm2d",
    "Dropout",
    "LayerNorm",
    "AdaptiveAvgPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "MaxPool2d",
]
