"""Multi-head attention with explicit backward, for the Transformer model."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import functional as F
from ..backend import current_backend
from ..module import NO_GRAD, Module, check_backward_cache, is_grad_enabled
from .core import Linear


class MultiHeadAttention(Module):
    """Scaled dot-product multi-head attention.

    Because attention consumes three inputs, it exposes
    :meth:`attend`/:meth:`backward_attend` instead of the single-input
    ``forward``/``backward`` pair.  The internal projections are ordinary
    :class:`~repro.nn.layers.core.Linear` layers, so ADA-GP forward hooks
    and gradient prediction apply to them transparently.
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(
                f"d_model={d_model} must be divisible by num_heads={num_heads}"
            )
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads
        self.q_proj = Linear(d_model, d_model, rng=rng)
        self.k_proj = Linear(d_model, d_model, rng=rng)
        self.v_proj = Linear(d_model, d_model, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)
        self._cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, _heads, seq, _dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)

    # ------------------------------------------------------------------
    def attend(
        self,
        query: np.ndarray,
        key: np.ndarray,
        value: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Compute attention.  ``mask`` holds 1 for visible, 0 for blocked.

        ``mask`` broadcasts against ``(batch, heads, len_q, len_k)``.
        """
        backend = current_backend()
        q = self._split_heads(self.q_proj(query))
        k = self._split_heads(self.k_proj(key))
        v = self._split_heads(self.v_proj(value))
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = backend.attn_scores(q, k) * scale
        if mask is not None:
            scores = np.where(mask.astype(bool), scores, np.float32(-1e9))
        attn = F.softmax(scores, axis=-1)
        context = backend.attn_context(attn, v)
        # Under no_grad the per-head q/k/v and the full attention matrix
        # — the layer's largest retained tensors — are not kept.
        self._cache = (q, k, v, attn, scale) if is_grad_enabled() else NO_GRAD
        return self.out_proj(self._merge_heads(context))

    def backward_attend(
        self, grad_out: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward through attention; returns (d_query, d_key, d_value)."""
        check_backward_cache(self._cache, self)
        backend = current_backend()
        q, k, v, attn, scale = self._cache
        d_context = self._split_heads(self.out_proj.backward(grad_out))
        d_attn = backend.attn_scores(d_context, v)
        d_v = backend.attn_context_t(attn, d_context)
        # Softmax backward: dS = A * (dA - sum(dA * A)).
        inner = (d_attn * attn).sum(axis=-1, keepdims=True)
        d_scores = attn * (d_attn - inner)
        d_q = backend.attn_context(d_scores, k) * scale
        d_k = backend.attn_context_t(d_scores, q) * scale
        d_query = self.q_proj.backward(self._merge_heads(d_q))
        d_key = self.k_proj.backward(self._merge_heads(d_k))
        d_value = self.v_proj.backward(self._merge_heads(d_v))
        return d_query, d_key, d_value

    # Single-input Module interface = self-attention without mask.
    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.attend(x, x, x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        d_q, d_k, d_v = self.backward_attend(grad_out)
        return d_q + d_k + d_v


def causal_mask(seq_len: int) -> np.ndarray:
    """Lower-triangular (1=visible) mask for autoregressive decoding."""
    return np.tril(np.ones((1, 1, seq_len, seq_len), dtype=np.float32))


def padding_mask(token_ids: np.ndarray, pad_id: int) -> np.ndarray:
    """Mask keys at padding positions: shape (batch, 1, 1, seq_len)."""
    visible = (token_ids != pad_id).astype(np.float32)
    return visible[:, None, None, :]
