"""Composite building blocks: residual add, branch concat, and helpers.

These compose ``forward``/``backward`` explicitly so deep CNN topologies
(ResNet skip connections, DenseNet/Inception concatenation) work inside
the layer-wise framework.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..module import NO_GRAD, Module, check_backward_cache, is_grad_enabled
from .core import Identity, Sequential


class Residual(Module):
    """``y = main(x) + shortcut(x)`` with explicit backward through both."""

    def __init__(self, main: Module, shortcut: Optional[Module] = None) -> None:
        super().__init__()
        self.main = main
        self.shortcut = shortcut if shortcut is not None else Identity()

    def forward(self, x: np.ndarray) -> np.ndarray:
        main_out = self.main(x)
        short_out = self.shortcut(x)
        if main_out.shape != short_out.shape:
            raise ValueError(
                f"residual branch shapes differ: main {main_out.shape} vs "
                f"shortcut {short_out.shape}"
            )
        return main_out + short_out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.main.backward(grad_out) + self.shortcut.backward(grad_out)


class ConcatBranches(Module):
    """Run branches on the same input and concatenate outputs on channels.

    Used by Inception blocks; backward splits the gradient back per branch
    and sums the input gradients.
    """

    _extra_cache_attrs = ("_split_sizes",)

    def __init__(self, branches: Sequence[Module]) -> None:
        super().__init__()
        if not branches:
            raise ValueError("ConcatBranches needs at least one branch")
        self.branches: list[Module] = list(branches)
        self._split_sizes: Optional[list[int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        outputs = [branch(x) for branch in self.branches]
        self._split_sizes = (
            [out.shape[1] for out in outputs] if is_grad_enabled() else NO_GRAD
        )
        return np.concatenate(outputs, axis=1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._split_sizes, self)
        grad_in = None
        offset = 0
        for branch, size in zip(self.branches, self._split_sizes):
            grad_slice = grad_out[:, offset : offset + size]
            offset += size
            g = branch.backward(np.ascontiguousarray(grad_slice))
            grad_in = g if grad_in is None else grad_in + g
        return grad_in


class DenseConcat(Module):
    """``y = concat(x, main(x))`` on channels — one DenseNet layer hop."""

    _extra_cache_attrs = ("_in_channels",)

    def __init__(self, main: Module) -> None:
        super().__init__()
        self.main = main
        self._in_channels: Optional[int] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in_channels = x.shape[1] if is_grad_enabled() else NO_GRAD
        new_features = self.main(x)
        return np.concatenate([x, new_features], axis=1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._in_channels, self)
        grad_passthrough = np.ascontiguousarray(grad_out[:, : self._in_channels])
        grad_new = np.ascontiguousarray(grad_out[:, self._in_channels :])
        return grad_passthrough + self.main.backward(grad_new)


def conv_bn_relu(
    in_channels: int,
    out_channels: int,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """The ubiquitous Conv -> BatchNorm -> ReLU triple."""
    from .activations import ReLU
    from .core import Conv2d
    from .norm import BatchNorm2d

    return Sequential(
        Conv2d(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=padding,
            bias=False,
            rng=rng,
        ),
        BatchNorm2d(out_channels),
        ReLU(),
    )
