"""Core compute layers: Linear, Conv2d, Flatten, Identity, Sequential."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import init
from ..backend import ConvCtx, current_backend
from ..module import (
    NO_GRAD,
    Module,
    Parameter,
    PredictableMixin,
    check_backward_cache,
    is_grad_enabled,
)


class Linear(Module, PredictableMixin):
    """Fully connected layer ``y = x @ W.T + b``.

    ADA-GP treats each output neuron as one predictor sample and predicts
    its row of the weight gradient (``in_features`` values plus bias).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = init.layer_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), in_features, rng),
            name="weight",
        )
        self.bias = (
            Parameter(init.zeros((out_features,)), name="bias") if bias else None
        )
        self._cache_x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected last dim {self.in_features}, got {x.shape}"
            )
        self._cache_x = x if is_grad_enabled() else NO_GRAD
        return current_backend().linear_forward(
            x, self.weight.data, self.bias.data if self.bias is not None else None
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._cache_x, self)
        grad_x, grad_w, grad_b = current_backend().linear_backward(
            self._cache_x,
            grad_out,
            self.weight.data,
            with_bias=self.bias is not None,
        )
        self.weight.accumulate_grad(grad_w)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_b)
        return grad_x

    # -- PredictableMixin ------------------------------------------------
    def gradient_size(self) -> int:
        return self.in_features + (1 if self.bias is not None else 0)

    def output_units(self) -> int:
        return self.out_features

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module, PredictableMixin):
    """2-D convolution over NCHW tensors via im2col + GEMM."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = init.layer_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_uniform(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng
            ),
            name="weight",
        )
        self.bias = (
            Parameter(init.zeros((out_channels,)), name="bias") if bias else None
        )
        self._cache_ctx: Optional[ConvCtx] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected NCHW input with {self.in_channels} channels, "
                f"got shape {x.shape}"
            )
        out, ctx = current_backend().conv2d_forward(
            x,
            self.weight.data,
            self.bias.data if self.bias is not None else None,
            self.stride,
            self.padding,
        )
        if is_grad_enabled():
            self._cache_ctx = ctx
        else:
            # Forward-only stream: the im2col workspace goes straight
            # back to the backend pool so the next same-shaped conv
            # reuses it instead of allocating.
            ctx.release()
            self._cache_ctx = NO_GRAD
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        ctx = self._cache_ctx
        check_backward_cache(ctx, self)
        # Backward runs on the backend that produced the forward context,
        # so phase-level backend switches can never mix representations.
        grad_x, grad_w, grad_b = ctx.backend.conv2d_backward(
            grad_out, self.weight.data, ctx, with_bias=self.bias is not None
        )
        self.weight.accumulate_grad(grad_w)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_b)
        return grad_x

    # -- PredictableMixin ------------------------------------------------
    def gradient_size(self) -> int:
        per_filter = self.in_channels * self.kernel_size * self.kernel_size
        return per_filter + (1 if self.bias is not None else 0)

    def output_units(self) -> int:
        return self.out_channels

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class Flatten(Module):
    """Flatten all dims after the batch dim."""

    def __init__(self) -> None:
        super().__init__()
        self._cache_shape: Optional[tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache_shape = x.shape if is_grad_enabled() else NO_GRAD
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._cache_shape, self)
        return grad_out.reshape(self._cache_shape)


class Identity(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class Sequential(Module):
    """A chain of modules executed in order; backward runs in reverse."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers: list[Module] = list(modules)

    def append(self, module: Module) -> "Sequential":
        self.layers.append(module)
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __iter__(self):
        return iter(self.layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not is_grad_enabled():
            return self._forward_no_grad(x)
        for layer in self.layers:
            x = layer(x)
        return x

    def _forward_no_grad(self, x: np.ndarray) -> np.ndarray:
        """Forward-only pass through the active backend's fold pipeline.

        The backend's ``fold_pipeline()`` (``None`` on the reference
        backend — exact layer-by-layer semantics) plans the layer list
        into modules interleaved with folded ops: conv+BN(+ReLU) as one
        rescaled convolution, eval-BN+ReLU as an in-place affine,
        linear+activation in place (see :mod:`repro.nn.passes`).
        Eligibility — running-stats-only BN, no forward hooks on folded
        layers — is re-checked on every forward because modes and hooks
        change between batches; folded layers are left in the same
        NO_GRAD cache state a plain no-grad forward produces.
        """
        pipeline = current_backend().fold_pipeline()
        plan = pipeline.plan(self.layers) if pipeline is not None else None
        if plan is None:
            for layer in self.layers:
                x = layer(x)
            return x
        # Deferred import: repro.nn.passes imports the layer classes
        # defined in this module.
        from ..passes.base import FoldedOp

        for item in plan:
            if type(item) is FoldedOp:
                x = item.run(x)
                item.mark_no_grad()
            else:
                x = item(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential({inner})"


def sequential_of(layers: Sequence[Module]) -> Sequential:
    """Build a :class:`Sequential` from any sequence of modules."""
    return Sequential(*layers)
