"""Normalization and regularization layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backend import current_backend
from ..module import (
    NO_GRAD,
    Module,
    Parameter,
    check_backward_cache,
    is_grad_enabled,
)
from .. import init


class BatchNorm2d(Module):
    """Batch normalization over the channel dim of NCHW tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)), name="weight")
        self.bias = Parameter(init.zeros((num_features,)), name="bias")
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)
        # Bumped whenever the running stats change; the fused backend's
        # folded conv+BN cache keys on it (plus Parameter versions).
        self.stats_version = 0
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d expected NCHW with {self.num_features} channels, "
                f"got {x.shape}"
            )
        if self.training:
            mean, var = current_backend().moments(x, (0, 2, 3))
            # PyTorch-compatible running stats: the running_var update
            # stores the unbiased (Bessel-corrected) estimate, while
            # normalization below keeps using the biased batch variance.
            count = x.shape[0] * x.shape[2] * x.shape[3]
            unbiased_var = var * (count / (count - 1)) if count > 1 else var
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            ).astype(np.float32)
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * unbiased_var
            ).astype(np.float32)
            self.stats_version += 1
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (x_hat, inv_std) if is_grad_enabled() else NO_GRAD
        return (
            self.weight.data[None, :, None, None] * x_hat
            + self.bias.data[None, :, None, None]
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._cache, self)
        x_hat, inv_std = self._cache
        axes = (0, 2, 3)
        count = grad_out.shape[0] * grad_out.shape[2] * grad_out.shape[3]
        self.weight.accumulate_grad((grad_out * x_hat).sum(axis=axes))
        self.bias.accumulate_grad(grad_out.sum(axis=axes))
        gamma = self.weight.data[None, :, None, None]
        g = grad_out * gamma
        if not self.training:
            return g * inv_std[None, :, None, None]
        g_mean = g.mean(axis=axes, keepdims=True)
        gx_mean = (g * x_hat).mean(axis=axes, keepdims=True)
        # Standard batchnorm backward; `count` cancels into the means above.
        return inv_std[None, :, None, None] * (g - g_mean - x_hat * gx_mean)


class BatchNorm1d(Module):
    """Batch normalization over (batch, features) tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)), name="weight")
        self.bias = Parameter(init.zeros((num_features,)), name="bias")
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)
        self.stats_version = 0
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expected (batch, {self.num_features}), got {x.shape}"
            )
        if self.training:
            mean, var = current_backend().moments(x, (0,))
            self.stats_version += 1
            # Unbiased running_var, biased normalization (see BatchNorm2d).
            count = x.shape[0]
            unbiased_var = var * (count / (count - 1)) if count > 1 else var
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            ).astype(np.float32)
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * unbiased_var
            ).astype(np.float32)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std) if is_grad_enabled() else NO_GRAD
        return self.weight.data * x_hat + self.bias.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._cache, self)
        x_hat, inv_std = self._cache
        self.weight.accumulate_grad((grad_out * x_hat).sum(axis=0))
        self.bias.accumulate_grad(grad_out.sum(axis=0))
        g = grad_out * self.weight.data
        if not self.training:
            return g * inv_std
        g_mean = g.mean(axis=0, keepdims=True)
        gx_mean = (g * x_hat).mean(axis=0, keepdims=True)
        return inv_std * (g - g_mean - x_hat * gx_mean)


class LayerNorm(Module):
    """Layer normalization over the last dimension (Transformer-style)."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)), name="weight")
        self.bias = Parameter(init.zeros((normalized_shape,)), name="bias")
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.normalized_shape:
            raise ValueError(
                f"LayerNorm expected last dim {self.normalized_shape}, got {x.shape}"
            )
        mean, var = current_backend().moments(x, -1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std) if is_grad_enabled() else NO_GRAD
        return self.weight.data * x_hat + self.bias.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._cache, self)
        x_hat, inv_std = self._cache
        reduce_axes = tuple(range(grad_out.ndim - 1))
        self.weight.accumulate_grad((grad_out * x_hat).sum(axis=reduce_axes))
        self.bias.accumulate_grad(grad_out.sum(axis=reduce_axes))
        g = grad_out * self.weight.data
        g_mean = g.mean(axis=-1, keepdims=True)
        gx_mean = (g * x_hat).mean(axis=-1, keepdims=True)
        return inv_std * (g - g_mean - x_hat * gx_mean)


class Dropout(Module):
    """Inverted dropout; identity when the module is in eval mode."""

    _extra_cache_attrs = ("_mask",)

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = init.layer_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None if is_grad_enabled() else NO_GRAD
            return x
        keep = 1.0 - self.p
        # Training semantics regardless of grad mode: the mask is drawn
        # and applied either way (consuming the same rng stream); only
        # its retention for backward is skipped under no_grad.
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        self._mask = mask if is_grad_enabled() else NO_GRAD
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is NO_GRAD:
            check_backward_cache(self._mask, self)
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
