"""Pooling layers over NCHW tensors."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backend import current_backend
from ..module import NO_GRAD, Module, check_backward_cache, is_grad_enabled


class MaxPool2d(Module):
    """Max pooling with square windows."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        if padding * 2 > kernel_size:
            # Guarantees every window sees at least one real element, so
            # the -inf padding below can never be a window's argmax.
            raise ValueError(
                f"padding ({padding}) must be at most half the kernel size "
                f"({kernel_size}) for MaxPool2d"
            )
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, _, _ = x.shape
        backend = current_backend()
        # Pad with -inf, not zero: a padded slot must never win the max
        # (a zero pad would beat real negative activations and, worse,
        # rewrite real zero activations — ubiquitous after ReLU — when
        # masked by value), and backward must never route gradient into
        # the padding ring where col2im drops it.
        fill = -np.inf if self.padding > 0 else 0.0
        cols, out_h, out_w = backend.unfold(
            x, self.kernel_size, self.stride, self.padding, fill_value=fill
        )
        k2 = self.kernel_size * self.kernel_size
        windows = cols.reshape(batch, channels, k2, out_h * out_w)
        if not is_grad_enabled():
            # max() reads the same winning element argmax would select;
            # no index tensor is materialized or retained.
            out = windows.max(axis=2)
            backend.release(cols)
            self._cache = NO_GRAD
            return np.ascontiguousarray(
                out.reshape(batch, channels, out_h, out_w)
            )
        argmax = windows.argmax(axis=2)
        out = np.take_along_axis(windows, argmax[:, :, None, :], axis=2)[:, :, 0, :]
        # Only argmax survives into backward; the columns go back to the
        # workspace pool immediately.
        backend.release(cols)
        self._cache = (x.shape, argmax, out_h, out_w)
        return np.ascontiguousarray(out.reshape(batch, channels, out_h, out_w))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._cache, self)
        x_shape, argmax, out_h, out_w = self._cache
        batch, channels = x_shape[0], x_shape[1]
        backend = current_backend()
        k2 = self.kernel_size * self.kernel_size
        cols_shape = (batch, channels * k2, out_h * out_w)
        buf = backend.acquire_cols(cols_shape, grad_out.dtype)
        if buf is None:
            buf = np.zeros(cols_shape, dtype=grad_out.dtype)
        else:
            buf.fill(0.0)
        grad_cols = buf.reshape(batch, channels, k2, out_h * out_w)
        g_flat = grad_out.reshape(batch, channels, out_h * out_w)
        np.put_along_axis(grad_cols, argmax[:, :, None, :], g_flat[:, :, None, :], axis=2)
        grad_x = backend.fold(
            buf, x_shape, self.kernel_size, self.stride, self.padding
        )
        backend.release(buf)
        return grad_x


class AvgPool2d(Module):
    """Average pooling with square windows."""

    _extra_cache_attrs = ("_x_shape",)

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._x_shape: Optional[tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, _, _ = x.shape
        backend = current_backend()
        cols, out_h, out_w = backend.unfold(
            x, self.kernel_size, self.stride, self.padding
        )
        k2 = self.kernel_size * self.kernel_size
        out = cols.reshape(batch, channels, k2, out_h * out_w).mean(axis=2)
        backend.release(cols)
        self._x_shape = x.shape if is_grad_enabled() else NO_GRAD
        return out.reshape(batch, channels, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._x_shape, self)
        batch, channels = self._x_shape[0], self._x_shape[1]
        out_h, out_w = grad_out.shape[2], grad_out.shape[3]
        backend = current_backend()
        k2 = self.kernel_size * self.kernel_size
        g = grad_out.reshape(batch, channels, 1, out_h * out_w) / k2
        spread = np.broadcast_to(g, (batch, channels, k2, out_h * out_w))
        cols_shape = (batch, channels * k2, out_h * out_w)
        buf = backend.acquire_cols(cols_shape, grad_out.dtype)
        if buf is None:
            grad_cols = np.ascontiguousarray(spread).reshape(cols_shape)
        else:
            np.copyto(buf.reshape(spread.shape), spread)
            grad_cols = buf
        grad_x = backend.fold(
            grad_cols, self._x_shape, self.kernel_size, self.stride, self.padding
        )
        backend.release(grad_cols)
        return grad_x


class AdaptiveAvgPool2d(Module):
    """Average-pool to a fixed output size regardless of input size."""

    _extra_cache_attrs = ("_x_shape",)

    def __init__(self, output_size: tuple[int, int] | int):
        super().__init__()
        if isinstance(output_size, int):
            output_size = (output_size, output_size)
        self.output_size = output_size
        self._x_shape: Optional[tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape if is_grad_enabled() else NO_GRAD
        return current_backend().adaptive_avg_pool2d(x, self.output_size)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._x_shape, self)
        return current_backend().adaptive_avg_pool2d_backward(
            grad_out, self._x_shape
        )


class GlobalAvgPool2d(Module):
    """Average over all spatial positions, producing (batch, channels)."""

    _extra_cache_attrs = ("_x_shape",)

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: Optional[tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape if is_grad_enabled() else NO_GRAD
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        check_backward_cache(self._x_shape, self)
        batch, channels, height, width = self._x_shape
        grad = grad_out.reshape(batch, channels, 1, 1) / (height * width)
        return np.broadcast_to(grad, self._x_shape).astype(grad_out.dtype).copy()
