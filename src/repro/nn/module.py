"""Base classes of the layer-wise NumPy neural-network framework.

The framework intentionally avoids taped autograd: every layer implements
an explicit ``forward`` and an explicit ``backward`` that consumes the
gradient of the loss with respect to the layer output and returns the
gradient with respect to the layer input, accumulating parameter
gradients on the way.  This mirrors what a DNN accelerator executes and
gives ADA-GP direct access to the two things it needs:

* per-layer output activations (via forward hooks), and
* per-layer weight-gradient injection without running backward.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional

import numpy as np


# ----------------------------------------------------------------------
# Gradient mode.
#
# Phase-GP batches and evaluation are *forward-only*: nothing will ever
# call ``backward``, so retaining backward caches (im2col columns,
# activation masks, normalization ``x_hat`` — the largest allocations of
# a step) is pure waste.  ``no_grad()`` switches every layer's forward
# into a cache-free mode whose per-layer outputs are bitwise identical
# to the grad-enabled forward; it is orthogonal to ``train()``/``eval()``
# — batch-norm batch statistics and dropout keep their *training*
# semantics under ``no_grad``, only the backward bookkeeping is skipped.
# (One composite-level exception: a fused-backend ``Sequential`` in eval
# mode may fold conv+BN into a single GEMM under no_grad, equivalent at
# atol<=1e-5 rather than bitwise — see DESIGN.md §8.)
# ----------------------------------------------------------------------
_grad_enabled: bool = True


def is_grad_enabled() -> bool:
    """Whether layer forwards currently retain backward caches."""
    return _grad_enabled


@contextmanager
def no_grad():
    """Context manager disabling backward-cache retention (reentrant).

    Inside the scope every layer forward skips its backward bookkeeping:
    conv layers release their im2col workspace immediately, activations
    save no masks, normalization layers save no ``x_hat`` — per-layer
    outputs stay bitwise identical (composite fused-backend folding is
    the one atol-level exception, see the module note above).  Calling
    ``backward`` on a layer whose last forward ran under ``no_grad``
    raises a :class:`RuntimeError`.  Forward hooks still fire, so
    Phase-GP predicted updates work unchanged.
    """
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


class _NoGradCache:
    """Sentinel stored in place of a backward cache by no-grad forwards.

    Distinct from ``None`` (never ran forward / caches cleared) so
    ``backward`` can tell the difference and raise a precise error.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "NO_GRAD"


#: The singleton layers assign to their cache attributes under no_grad.
NO_GRAD = _NoGradCache()


def check_backward_cache(cache, layer) -> None:
    """Validate a layer's saved forward cache at the top of ``backward``.

    Raises the classic "backward before forward" error on ``None`` and a
    no-grad-specific error on the :data:`NO_GRAD` sentinel.
    """
    if cache is None:
        raise RuntimeError(
            f"{type(layer).__name__}.backward called before forward"
        )
    if cache is NO_GRAD:
        raise RuntimeError(
            f"{type(layer).__name__}.backward called after a no-grad "
            "forward; rerun the forward outside no_grad() to rebuild "
            "backward caches"
        )


class Parameter:
    """A trainable tensor: raw data plus an accumulated gradient.

    Parameters are plain ``float32`` NumPy arrays.  Gradients accumulate
    across ``backward`` calls until :meth:`zero_grad` clears them, which
    matches the semantics of mainstream frameworks.
    """

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        self.data = np.ascontiguousarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None
        self.name = name
        # Monotonic mutation counter: optimizers bump it whenever they
        # update ``data`` so derived caches (the fold passes' conv+BN
        # weights) can detect staleness without comparing arrays.
        self.version = 0

    def bump_version(self) -> None:
        """Record that ``data`` was mutated (invalidates derived caches)."""
        self.version += 1

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the stored gradient, allocating on first use."""
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"shape {self.data.shape} for {self.name!r}"
            )
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


# Signature of a forward hook: hook(module, output) -> None.
ForwardHook = Callable[["Module", np.ndarray], None]


class Module:
    """Base class for all layers and composite blocks.

    Subclasses implement :meth:`forward` and :meth:`backward`.  Calling a
    module (``module(x)``) runs forward and then fires the module's
    ``forward_hook`` if one is installed; the ADA-GP trainer uses this to
    observe activations and, in Phase GP, update weights immediately.
    """

    #: Extra attribute names (beyond the ``_cache*`` prefix convention)
    #: that :meth:`clear_caches` resets — subclasses with differently
    #: named forward caches (masks, saved shapes) list them here.
    _extra_cache_attrs: tuple[str, ...] = ()

    def __init__(self) -> None:
        self.training = True
        self.forward_hook: Optional[ForwardHook] = None

    # ------------------------------------------------------------------
    # Interface to implement.
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Invocation.
    # ------------------------------------------------------------------
    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = self.forward(x)
        if self.forward_hook is not None:
            self.forward_hook(self, out)
        return out

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def _direct_parameters(self) -> Iterator[Parameter]:
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                yield value

    def _direct_children(self) -> Iterator[tuple[str, "Module"]]:
        for key, value in self.__dict__.items():
            if isinstance(value, Module):
                yield key, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{key}.{i}", item

    def children(self) -> Iterator["Module"]:
        for _name, child in self._direct_children():
            yield child

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` for this module and descendants."""
        yield prefix or "root", self
        for name, child in self._direct_children():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _name, module in self.named_modules():
            yield module

    def parameters(self) -> Iterator[Parameter]:
        seen: set[int] = set()
        for module in self.modules():
            for param in module._direct_parameters():
                if id(param) not in seen:
                    seen.add(id(param))
                    yield param

    def named_parameters(self) -> Iterator[tuple[str, Parameter]]:
        seen: set[int] = set()
        for mod_name, module in self.named_modules():
            for param in module._direct_parameters():
                if id(param) not in seen:
                    seen.add(id(param))
                    yield f"{mod_name}.{param.name}", param

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # State management.
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def clear_caches(self) -> "Module":
        """Drop every forward cache in this module tree.

        Layer caches (conv columns, pooling argmax, normalization
        ``x_hat``) are the largest allocations of a training step and
        would otherwise stay pinned until the *next* forward overwrites
        them; the engine calls this after each batch to cut peak memory
        between batches.  Backward requires a fresh forward afterwards.
        Cache objects exposing ``release()`` (backend conv contexts
        holding a pooled workspace) are released back to their pool
        first, and backend workspace-pool counters are reset so every
        bench window that starts at a cache-clear boundary starts from
        clean stats.
        """
        for module in self.modules():
            module._clear_cache()
        from .backend import reset_backend_stats

        reset_backend_stats()
        return self

    def _clear_cache(self) -> None:
        for key, value in self.__dict__.items():
            if value is None:
                continue
            if key.startswith("_cache") or key in self._extra_cache_attrs:
                release = getattr(value, "release", None)
                if callable(release):
                    release()
                self.__dict__[key] = None

    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()
            param.bump_version()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PredictableMixin:
    """Marker for layers whose weight gradients ADA-GP can predict.

    Predictable layers expose ``weight`` (and optionally ``bias``)
    parameters and record, during forward, the output activation that the
    predictor consumes.
    """

    weight: Parameter
    bias: Optional[Parameter]

    def gradient_size(self) -> int:
        """Number of gradient values to predict per output unit."""
        raise NotImplementedError

    def output_units(self) -> int:
        """Number of output units (filters / neurons) of the layer."""
        raise NotImplementedError


def predictable_layers(model: Module) -> list[Module]:
    """Return every ADA-GP-predictable layer of ``model`` in forward order.

    Forward order here is definition order, which all models in
    :mod:`repro.models` keep aligned with execution order.
    """
    return [m for m in model.modules() if isinstance(m, PredictableMixin)]
