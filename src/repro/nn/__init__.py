"""`repro.nn` — a from-scratch layer-wise NumPy DNN framework.

This is the training substrate the ADA-GP reproduction runs on (the
paper used PyTorch; see DESIGN.md §2 for the substitution rationale).
Layers implement explicit ``forward``/``backward``; optimizers support
per-parameter stepping so ADA-GP can update a layer the moment its
forward pass finishes.
"""

from . import backend, functional, init, losses, optim
from .backend import (
    Backend,
    FusedBackend,
    NativeBackend,
    NativeUnavailableError,
    NumpyBackend,
    backend_scope,
    current_backend,
    get_backend,
    list_backends,
    native_available,
    register_backend,
    use_backend,
)
from .layers import *  # noqa: F401,F403 -- curated in layers/__init__.py
from .layers import __all__ as _layers_all
from . import passes  # noqa: E402 -- after layers: passes match layer types
from .losses import (
    BCEWithLogitsLoss,
    CrossEntropyLoss,
    MSELoss,
    SmoothL1Loss,
    accuracy,
    loss_value,
)
from .module import (
    NO_GRAD,
    Module,
    Parameter,
    PredictableMixin,
    is_grad_enabled,
    no_grad,
    predictable_layers,
)
from .optim import SGD, Adam, MultiStepLR, ReduceLROnPlateau

__all__ = [
    "backend",
    "functional",
    "init",
    "losses",
    "optim",
    "passes",
    "Backend",
    "FusedBackend",
    "NativeBackend",
    "NativeUnavailableError",
    "NumpyBackend",
    "backend_scope",
    "current_backend",
    "get_backend",
    "list_backends",
    "native_available",
    "register_backend",
    "use_backend",
    "BCEWithLogitsLoss",
    "CrossEntropyLoss",
    "MSELoss",
    "SmoothL1Loss",
    "accuracy",
    "loss_value",
    "Module",
    "NO_GRAD",
    "Parameter",
    "PredictableMixin",
    "is_grad_enabled",
    "no_grad",
    "predictable_layers",
    "SGD",
    "Adam",
    "MultiStepLR",
    "ReduceLROnPlateau",
] + list(_layers_all)
