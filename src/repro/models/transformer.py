"""Trainable seq2seq Transformer (3 encoder + 3 decoder layers, paper §6.4).

Implements the full encoder-decoder with explicit backward through
attention, layer norms and residuals, so both the BP baseline and
ADA-GP (which predicts gradients for the attention projections and
feed-forward Linear layers) can train it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn.layers.attention import causal_mask, padding_mask
from ..nn.module import Module


class FeedForward(Module):
    """Position-wise feed-forward block: Linear -> ReLU -> Linear."""

    def __init__(self, d_model: int, d_ff: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.net = nn.Sequential(
            nn.Linear(d_model, d_ff, rng=rng),
            nn.ReLU(),
            nn.Linear(d_ff, d_model, rng=rng),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.net(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_out)


class EncoderLayer(Module):
    """Post-norm Transformer encoder layer."""

    def __init__(self, d_model: int, num_heads: int, d_ff: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.self_attn = nn.MultiHeadAttention(d_model, num_heads, rng=rng)
        self.norm1 = nn.LayerNorm(d_model)
        self.ffn = FeedForward(d_model, d_ff, rng)
        self.norm2 = nn.LayerNorm(d_model)

    def encode(self, x: np.ndarray, mask: Optional[np.ndarray]) -> np.ndarray:
        attn_out = self.self_attn.attend(x, x, x, mask)
        x1 = self.norm1(x + attn_out)
        ffn_out = self.ffn(x1)
        return self.norm2(x1 + ffn_out)

    def backward_encode(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.norm2.backward(grad_out)
        g_x1 = g + self.ffn.backward(g)
        g1 = self.norm1.backward(g_x1)
        d_q, d_k, d_v = self.self_attn.backward_attend(g1)
        return g1 + d_q + d_k + d_v

    # Single-input interface (unused in seq2seq, handy for tests).
    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.encode(x, None)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.backward_encode(grad_out)


class DecoderLayer(Module):
    """Post-norm decoder layer: causal self-attn, cross-attn, FFN."""

    def __init__(self, d_model: int, num_heads: int, d_ff: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.self_attn = nn.MultiHeadAttention(d_model, num_heads, rng=rng)
        self.norm1 = nn.LayerNorm(d_model)
        self.cross_attn = nn.MultiHeadAttention(d_model, num_heads, rng=rng)
        self.norm2 = nn.LayerNorm(d_model)
        self.ffn = FeedForward(d_model, d_ff, rng)
        self.norm3 = nn.LayerNorm(d_model)

    def decode(
        self,
        x: np.ndarray,
        memory: np.ndarray,
        self_mask: Optional[np.ndarray],
        cross_mask: Optional[np.ndarray],
    ) -> np.ndarray:
        attn_out = self.self_attn.attend(x, x, x, self_mask)
        x1 = self.norm1(x + attn_out)
        cross_out = self.cross_attn.attend(x1, memory, memory, cross_mask)
        x2 = self.norm2(x1 + cross_out)
        ffn_out = self.ffn(x2)
        return self.norm3(x2 + ffn_out)

    def backward_decode(
        self, grad_out: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Returns (d_x, d_memory)."""
        g = self.norm3.backward(grad_out)
        g_x2 = g + self.ffn.backward(g)
        g2 = self.norm2.backward(g_x2)
        d_q, d_mem_k, d_mem_v = self.cross_attn.backward_attend(g2)
        d_memory = d_mem_k + d_mem_v
        g_x1 = g2 + d_q
        g1 = self.norm1.backward(g_x1)
        d_sq, d_sk, d_sv = self.self_attn.backward_attend(g1)
        return g1 + d_sq + d_sk + d_sv, d_memory


class Seq2SeqTransformer(Module):
    """Encoder-decoder Transformer over integer token sequences.

    ``forward`` takes the tuple ``(src_ids, tgt_in_ids)`` and returns
    logits over the target vocabulary for every target position.
    """

    def __init__(
        self,
        src_vocab: int,
        tgt_vocab: int,
        d_model: int = 32,
        num_heads: int = 2,
        d_ff: int = 64,
        num_encoder_layers: int = 3,
        num_decoder_layers: int = 3,
        max_len: int = 64,
        pad_id: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.pad_id = pad_id
        self.d_model = d_model
        self.src_embed = nn.Embedding(src_vocab, d_model, rng=rng)
        self.tgt_embed = nn.Embedding(tgt_vocab, d_model, rng=rng)
        self.pos_enc = nn.PositionalEncoding(d_model, max_len=max_len)
        self.encoder_layers = [
            EncoderLayer(d_model, num_heads, d_ff, rng)
            for _ in range(num_encoder_layers)
        ]
        self.decoder_layers = [
            DecoderLayer(d_model, num_heads, d_ff, rng)
            for _ in range(num_decoder_layers)
        ]
        self.generator = nn.Linear(d_model, tgt_vocab, rng=rng)
        self._scale = float(np.sqrt(d_model))

    # ------------------------------------------------------------------
    def encode(self, src_ids: np.ndarray) -> np.ndarray:
        src_mask = padding_mask(src_ids, self.pad_id)
        x = self.pos_enc(self.src_embed(src_ids) * self._scale)
        for layer in self.encoder_layers:
            x = layer.encode(x, src_mask)
        return x

    def forward(self, inputs: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        src_ids, tgt_ids = inputs
        src_mask = padding_mask(src_ids, self.pad_id)
        tgt_len = tgt_ids.shape[1]
        tgt_mask = causal_mask(tgt_len) * padding_mask(tgt_ids, self.pad_id)
        memory = self.encode(src_ids)
        y = self.pos_enc(self.tgt_embed(tgt_ids) * self._scale)
        for layer in self.decoder_layers:
            y = layer.decode(y, memory, tgt_mask, src_mask)
        return self.generator(y)

    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        g = self.generator.backward(grad_logits)
        d_memory_total = None
        for layer in reversed(self.decoder_layers):
            g, d_memory = layer.backward_decode(g)
            d_memory_total = (
                d_memory if d_memory_total is None else d_memory_total + d_memory
            )
        g = self.pos_enc.backward(g) * self._scale
        self.tgt_embed.backward(g)
        g_mem = d_memory_total
        for layer in reversed(self.encoder_layers):
            g_mem = layer.backward_encode(g_mem)
        g_mem = self.pos_enc.backward(g_mem) * self._scale
        self.src_embed.backward(g_mem)
        return np.zeros(0, dtype=np.float32)

    # ------------------------------------------------------------------
    def greedy_decode(
        self, src_ids: np.ndarray, max_len: int, bos_id: int, eos_id: int
    ) -> np.ndarray:
        """Greedy autoregressive decoding (used for BLEU evaluation)."""
        batch = src_ids.shape[0]
        memory = self.encode(src_ids)
        src_mask = padding_mask(src_ids, self.pad_id)
        tokens = np.full((batch, 1), bos_id, dtype=np.int64)
        finished = np.zeros(batch, dtype=bool)
        for _ in range(max_len - 1):
            tgt_mask = causal_mask(tokens.shape[1]) * padding_mask(tokens, self.pad_id)
            y = self.pos_enc(self.tgt_embed(tokens) * self._scale)
            for layer in self.decoder_layers:
                y = layer.decode(y, memory, tgt_mask, src_mask)
            logits = self.generator(y)[:, -1]
            next_token = logits.argmax(axis=-1)
            next_token = np.where(finished, self.pad_id, next_token)
            tokens = np.concatenate([tokens, next_token[:, None]], axis=1)
            finished |= next_token == eos_id
            if finished.all():
                break
        return tokens
