"""Trainable mini variants of the paper's 13 classification models.

Full-size ImageNet networks cannot be trained in NumPy in reasonable
time, so the accuracy experiments (paper Table 1, Fig 15) run on
topology-preserving *mini* variants: the same block families (VGG conv
pairs, ResNet bottlenecks, DenseNet dense/transition blocks, Inception
mixed branches, MobileNet inverted residuals) with reduced channel
counts and block repeats.  Relative depth orderings between variants
(e.g. ResNet152-mini deeper than ResNet50-mini) are preserved.

All builders take an ``rng`` so experiments are reproducible, and return
plain :class:`~repro.nn.Module` pipelines compatible with both the BP
baseline trainer and the ADA-GP trainer.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .. import nn
from ..nn.layers.blocks import conv_bn_relu


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(0)


# ----------------------------------------------------------------------
# VGG minis
# ----------------------------------------------------------------------
_MINI_VGG_CONFIGS: dict[str, list] = {
    # 10 convs, matching full VGG13's conv count (Figs 15/16 use layers 1-10).
    "VGG13": [12, 12, "M", 16, 16, "M", 24, 24, "M", 32, 32, "M", 32, 32],
    "VGG16": [12, 12, "M", 16, 16, "M", 24, 24, 24, "M", 32, 32, 32, "M", 32, 32, 32],
    "VGG19": [
        12, 12, "M",
        16, 16, "M",
        24, 24, 24, 24, "M",
        32, 32, 32, 32, "M",
        32, 32, 32, 32,
    ],
}


def mini_vgg(
    name: str, num_classes: int, rng: Optional[np.random.Generator] = None
) -> nn.Sequential:
    rng = _rng(rng)
    layers: list[nn.Module] = []
    channels = 3
    for item in _MINI_VGG_CONFIGS[name]:
        if item == "M":
            layers.append(nn.MaxPool2d(2))
        else:
            layers.append(nn.Conv2d(channels, int(item), 3, padding=1, rng=rng))
            layers.append(nn.BatchNorm2d(int(item)))
            layers.append(nn.ReLU())
            channels = int(item)
    layers.append(nn.GlobalAvgPool2d())
    layers.append(nn.Linear(channels, num_classes, rng=rng))
    return nn.Sequential(*layers)


# ----------------------------------------------------------------------
# ResNet minis (bottleneck blocks)
# ----------------------------------------------------------------------
_MINI_RESNET_CONFIGS: dict[str, tuple[int, ...]] = {
    "ResNet50": (1, 1, 1, 1),
    "ResNet101": (1, 2, 2, 1),
    "ResNet152": (2, 2, 3, 2),
}
_MINI_STAGE_MID = (8, 12, 16, 24)
_EXPANSION = 2


def _mini_bottleneck(
    in_channels: int, mid: int, stride: int, rng: np.random.Generator
) -> nn.Module:
    out_channels = mid * _EXPANSION
    main = nn.Sequential(
        nn.Conv2d(in_channels, mid, 1, bias=False, rng=rng),
        nn.BatchNorm2d(mid),
        nn.ReLU(),
        nn.Conv2d(mid, mid, 3, stride=stride, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(mid),
        nn.ReLU(),
        nn.Conv2d(mid, out_channels, 1, bias=False, rng=rng),
        nn.BatchNorm2d(out_channels),
    )
    if stride != 1 or in_channels != out_channels:
        shortcut: nn.Module = nn.Sequential(
            nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
            nn.BatchNorm2d(out_channels),
        )
    else:
        shortcut = nn.Identity()
    return nn.Sequential(nn.Residual(main, shortcut), nn.ReLU())


def mini_resnet(
    name: str, num_classes: int, rng: Optional[np.random.Generator] = None
) -> nn.Sequential:
    rng = _rng(rng)
    blocks = _MINI_RESNET_CONFIGS[name]
    layers: list[nn.Module] = list(conv_bn_relu(3, 8, 3, padding=1, rng=rng))
    channels = 8
    for stage, (count, mid) in enumerate(zip(blocks, _MINI_STAGE_MID), start=1):
        for block in range(count):
            stride = 2 if (stage > 1 and block == 0) else 1
            layers.append(_mini_bottleneck(channels, mid, stride, rng))
            channels = mid * _EXPANSION
    layers.append(nn.GlobalAvgPool2d())
    layers.append(nn.Linear(channels, num_classes, rng=rng))
    return nn.Sequential(*layers)


# ----------------------------------------------------------------------
# DenseNet minis
# ----------------------------------------------------------------------
_MINI_DENSENET_CONFIGS: dict[str, tuple[tuple[int, ...], int, int]] = {
    "DenseNet121": ((2, 2, 2), 6, 12),
    "DenseNet161": ((2, 3, 3), 8, 16),
    "DenseNet169": ((2, 3, 4), 6, 12),
    "DenseNet201": ((3, 3, 4), 6, 12),
}


def _mini_dense_layer(
    in_channels: int, growth: int, rng: np.random.Generator
) -> nn.Module:
    main = nn.Sequential(
        nn.BatchNorm2d(in_channels),
        nn.ReLU(),
        nn.Conv2d(in_channels, 2 * growth, 1, bias=False, rng=rng),
        nn.BatchNorm2d(2 * growth),
        nn.ReLU(),
        nn.Conv2d(2 * growth, growth, 3, padding=1, bias=False, rng=rng),
    )
    return nn.DenseConcat(main)


def mini_densenet(
    name: str, num_classes: int, rng: Optional[np.random.Generator] = None
) -> nn.Sequential:
    rng = _rng(rng)
    block_config, growth, stem = _MINI_DENSENET_CONFIGS[name]
    layers: list[nn.Module] = list(conv_bn_relu(3, stem, 3, padding=1, rng=rng))
    channels = stem
    for block_idx, num_layers in enumerate(block_config, start=1):
        for _ in range(num_layers):
            layers.append(_mini_dense_layer(channels, growth, rng))
            channels += growth
        if block_idx != len(block_config):
            channels_out = channels // 2
            layers.extend(
                [
                    nn.BatchNorm2d(channels),
                    nn.ReLU(),
                    nn.Conv2d(channels, channels_out, 1, bias=False, rng=rng),
                    nn.AvgPool2d(2),
                ]
            )
            channels = channels_out
    layers.extend(
        [
            nn.BatchNorm2d(channels),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
            nn.Linear(channels, num_classes, rng=rng),
        ]
    )
    return nn.Sequential(*layers)


# ----------------------------------------------------------------------
# Inception minis
# ----------------------------------------------------------------------
def _mini_inception_block(
    in_channels: int, rng: np.random.Generator
) -> tuple[nn.Module, int]:
    """A 3-branch mixed block (1x1 / 3x3 / double 3x3)."""
    branch1 = conv_bn_relu(in_channels, 8, 1, rng=rng)
    branch2 = nn.Sequential(
        *conv_bn_relu(in_channels, 8, 1, rng=rng),
        *conv_bn_relu(8, 12, 3, padding=1, rng=rng),
    )
    branch3 = nn.Sequential(
        *conv_bn_relu(in_channels, 8, 1, rng=rng),
        *conv_bn_relu(8, 12, 3, padding=1, rng=rng),
        *conv_bn_relu(12, 12, 3, padding=1, rng=rng),
    )
    return nn.ConcatBranches([branch1, branch2, branch3]), 8 + 12 + 12


def _mini_reduction_block(
    in_channels: int, rng: np.random.Generator
) -> tuple[nn.Module, int]:
    branch1 = conv_bn_relu(in_channels, 16, 3, stride=2, padding=1, rng=rng)
    branch2 = nn.Sequential(
        *conv_bn_relu(in_channels, 8, 1, rng=rng),
        *conv_bn_relu(8, 16, 3, stride=2, padding=1, rng=rng),
    )
    branch3 = nn.MaxPool2d(2)
    return nn.ConcatBranches([branch1, branch2, branch3]), 16 + 16 + in_channels


def mini_inception(
    name: str, num_classes: int, rng: Optional[np.random.Generator] = None
) -> nn.Sequential:
    """Inception mini: V4 gets one more mixed block than V3."""
    rng = _rng(rng)
    layers: list[nn.Module] = list(conv_bn_relu(3, 12, 3, padding=1, rng=rng))
    channels = 12
    num_a_blocks = 2 if name == "Inception-V4" else 1
    for _ in range(num_a_blocks):
        block, channels = _mini_inception_block(channels, rng)
        layers.append(block)
    block, channels = _mini_reduction_block(channels, rng)
    layers.append(block)
    block, channels = _mini_inception_block(channels, rng)
    layers.append(block)
    layers.append(nn.GlobalAvgPool2d())
    layers.append(nn.Linear(channels, num_classes, rng=rng))
    return nn.Sequential(*layers)


# ----------------------------------------------------------------------
# MobileNet mini
# ----------------------------------------------------------------------
def _mini_inverted_residual(
    in_channels: int, out_channels: int, stride: int, expansion: int,
    rng: np.random.Generator,
) -> nn.Module:
    hidden = in_channels * expansion
    ops: list[nn.Module] = []
    if expansion != 1:
        ops.extend(
            [
                nn.Conv2d(in_channels, hidden, 1, bias=False, rng=rng),
                nn.BatchNorm2d(hidden),
                nn.ReLU6(),
            ]
        )
    # Depthwise stage approximated by a grouped 3x3 with small channel
    # count (the framework implements dense conv; the accelerator-side
    # specs use true depthwise costing).
    ops.extend(
        [
            nn.Conv2d(hidden, hidden, 3, stride=stride, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(hidden),
            nn.ReLU6(),
            nn.Conv2d(hidden, out_channels, 1, bias=False, rng=rng),
            nn.BatchNorm2d(out_channels),
        ]
    )
    main = nn.Sequential(*ops)
    if stride == 1 and in_channels == out_channels:
        return nn.Residual(main, nn.Identity())
    return main


def mini_mobilenet_v2(
    num_classes: int, rng: Optional[np.random.Generator] = None
) -> nn.Sequential:
    rng = _rng(rng)
    layers: list[nn.Module] = list(conv_bn_relu(3, 8, 3, padding=1, rng=rng))
    config = [(1, 8, 1, 1), (2, 12, 2, 2), (2, 16, 2, 2), (2, 24, 2, 1)]
    channels = 8
    for t, c, n, s in config:
        for i in range(n):
            stride = s if i == 0 else 1
            layers.append(_mini_inverted_residual(channels, c, stride, t, rng))
            channels = c
    layers.extend(
        [
            nn.Conv2d(channels, 48, 1, bias=False, rng=rng),
            nn.BatchNorm2d(48),
            nn.ReLU6(),
            nn.GlobalAvgPool2d(),
            nn.Linear(48, num_classes, rng=rng),
        ]
    )
    return nn.Sequential(*layers)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
MiniBuilder = Callable[[int, Optional[np.random.Generator]], nn.Sequential]

MINI_BUILDERS: dict[str, MiniBuilder] = {
    "ResNet50": lambda c, r=None: mini_resnet("ResNet50", c, r),
    "ResNet101": lambda c, r=None: mini_resnet("ResNet101", c, r),
    "ResNet152": lambda c, r=None: mini_resnet("ResNet152", c, r),
    "Inception-V4": lambda c, r=None: mini_inception("Inception-V4", c, r),
    "Inception-V3": lambda c, r=None: mini_inception("Inception-V3", c, r),
    "VGG13": lambda c, r=None: mini_vgg("VGG13", c, r),
    "VGG16": lambda c, r=None: mini_vgg("VGG16", c, r),
    "VGG19": lambda c, r=None: mini_vgg("VGG19", c, r),
    "DenseNet121": lambda c, r=None: mini_densenet("DenseNet121", c, r),
    "DenseNet161": lambda c, r=None: mini_densenet("DenseNet161", c, r),
    "DenseNet169": lambda c, r=None: mini_densenet("DenseNet169", c, r),
    "DenseNet201": lambda c, r=None: mini_densenet("DenseNet201", c, r),
    "MobileNet-V2": lambda c, r=None: mini_mobilenet_v2(c, r),
}


def build_mini(
    name: str, num_classes: int, rng: Optional[np.random.Generator] = None
) -> nn.Sequential:
    """Build a mini classification model by paper name."""
    if name not in MINI_BUILDERS:
        raise KeyError(f"unknown mini model {name!r}; choose from {sorted(MINI_BUILDERS)}")
    return MINI_BUILDERS[name](num_classes, rng)
