"""Full-size YOLO-v3 layer specs (Redmon & Farhadi 2018), 416x416 input.

Darknet-53 backbone plus the three multi-scale detection heads used for
PascalVOC (20 classes, 3 anchors per scale -> 75 output channels).
"""

from __future__ import annotations

from .specs import ModelSpec, SpecBuilder

# (residual repeats, channels) per darknet stage after the downsample conv.
_DARKNET_STAGES: list[tuple[int, int]] = [
    (1, 64),
    (2, 128),
    (8, 256),
    (8, 512),
    (4, 1024),
]


def _darknet_residual(builder: SpecBuilder, channels: int, tag: str) -> None:
    builder.conv(channels // 2, 1, name=f"{tag}.conv1")
    builder.conv(channels, 3, padding=1, name=f"{tag}.conv2")


def _head_block(builder: SpecBuilder, mid: int, tag: str) -> None:
    """The 5-conv detection neck: alternating 1x1/3x3."""
    builder.conv(mid, 1, name=f"{tag}.conv0")
    builder.conv(mid * 2, 3, padding=1, name=f"{tag}.conv1")
    builder.conv(mid, 1, name=f"{tag}.conv2")
    builder.conv(mid * 2, 3, padding=1, name=f"{tag}.conv3")
    builder.conv(mid, 1, name=f"{tag}.conv4")


def yolov3_spec(
    input_size: int = 416, num_classes: int = 20, anchors_per_scale: int = 3
) -> ModelSpec:
    """Build the YOLO-v3 spec; detection output is 3*(5+classes) per cell."""
    det_channels = anchors_per_scale * (5 + num_classes)
    builder = SpecBuilder("YOLO-v3", (3, input_size, input_size))
    builder.conv(32, 3, padding=1, name="stem.conv")
    route_shapes: dict[int, tuple[int, int, int]] = {}
    for stage_idx, (repeats, channels) in enumerate(_DARKNET_STAGES):
        builder.conv(channels, 3, stride=2, padding=1, name=f"down{stage_idx}.conv")
        for rep in range(repeats):
            _darknet_residual(builder, channels, tag=f"stage{stage_idx}.res{rep}")
        route_shapes[stage_idx] = (builder.channels, builder.height, builder.width)

    # Scale 1 head (13x13 for 416 input).
    _head_block(builder, 512, "head1.neck")
    neck1_shape = (builder.channels, builder.height, builder.width)
    builder.conv(1024, 3, padding=1, name="head1.conv")
    builder.conv(det_channels, 1, name="head1.detect")

    # Scale 2: route from neck1 -> 1x1 256 -> upsample -> concat stage3 (512).
    builder.set_shape(*neck1_shape)
    builder.conv(256, 1, name="head2.route.conv")
    stage3 = route_shapes[3]
    builder.set_shape(256 + stage3[0], stage3[1], stage3[2])
    _head_block(builder, 256, "head2.neck")
    neck2_shape = (builder.channels, builder.height, builder.width)
    builder.conv(512, 3, padding=1, name="head2.conv")
    builder.conv(det_channels, 1, name="head2.detect")

    # Scale 3: route from neck2 -> 1x1 128 -> upsample -> concat stage2 (256).
    builder.set_shape(*neck2_shape)
    builder.conv(128, 1, name="head3.route.conv")
    stage2 = route_shapes[2]
    builder.set_shape(128 + stage2[0], stage2[1], stage2[2])
    _head_block(builder, 128, "head3.neck")
    builder.conv(256, 3, padding=1, name="head3.conv")
    builder.conv(det_channels, 1, name="head3.detect")
    return builder.build()
