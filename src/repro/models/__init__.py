"""Model zoo: trainable minis + full-size specs of the paper's 15 networks."""

from .spec_registry import CLASSIFICATION_MODELS, DATASETS, all_specs, spec_for
from .specs import LayerKind, LayerSpec, ModelSpec, SpecBuilder
from .transformer import Seq2SeqTransformer
from .yolo import MiniYolo, YoloLoss, decode_predictions
from .zoo import MINI_BUILDERS, build_mini

__all__ = [
    "CLASSIFICATION_MODELS",
    "DATASETS",
    "all_specs",
    "spec_for",
    "LayerKind",
    "LayerSpec",
    "ModelSpec",
    "SpecBuilder",
    "Seq2SeqTransformer",
    "MiniYolo",
    "YoloLoss",
    "decode_predictions",
    "MINI_BUILDERS",
    "build_mini",
]
