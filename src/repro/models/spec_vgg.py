"""Full-size VGG layer specs (Simonyan & Zisserman 2014).

VGG13 has exactly 10 convolution layers, which is why the paper's Fig 15
and Fig 16 show 10 layer curves/groups; the spec order here matches that
numbering.
"""

from __future__ import annotations

from .specs import ModelSpec, SpecBuilder

# Channel plans; "M" marks a 2x2 max-pool.
VGG_CONFIGS: dict[str, list] = {
    "VGG13": [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "VGG16": [
        64, 64, "M",
        128, 128, "M",
        256, 256, 256, "M",
        512, 512, 512, "M",
        512, 512, 512, "M",
    ],
    "VGG19": [
        64, 64, "M",
        128, 128, "M",
        256, 256, 256, 256, "M",
        512, 512, 512, 512, "M",
        512, 512, 512, 512, "M",
    ],
}


def vgg_spec(name: str, input_size: int = 224, num_classes: int = 1000) -> ModelSpec:
    """Build a VGG spec.

    ``input_size=224`` yields the ImageNet classifier (25088-4096-4096-C);
    ``input_size=32`` yields the standard CIFAR adaptation (512-512-C).
    """
    if name not in VGG_CONFIGS:
        raise KeyError(f"unknown VGG variant {name!r}; choose from {list(VGG_CONFIGS)}")
    builder = SpecBuilder(name, (3, input_size, input_size))
    conv_index = 0
    for item in VGG_CONFIGS[name]:
        if item == "M":
            builder.pool(2, 2)
        else:
            conv_index += 1
            builder.conv(int(item), 3, padding=1, name=f"conv{conv_index}")
    if input_size >= 64:
        builder.linear(4096, name="fc1")
        builder.linear(4096, name="fc2")
        builder.linear(num_classes, name="fc3")
    else:
        builder.linear(512, name="fc1")
        builder.linear(num_classes, name="fc2")
    return builder.build()
