"""Full-size DenseNet layer specs (Huang et al. 2017)."""

from __future__ import annotations

from .specs import ModelSpec, SpecBuilder

# (block config, growth rate, stem features)
DENSENET_CONFIGS: dict[str, tuple[tuple[int, ...], int, int]] = {
    "DenseNet121": ((6, 12, 24, 16), 32, 64),
    "DenseNet161": ((6, 12, 36, 24), 48, 96),
    "DenseNet169": ((6, 12, 32, 32), 32, 64),
    "DenseNet201": ((6, 12, 48, 32), 32, 64),
}


def densenet_spec(
    name: str, input_size: int = 224, num_classes: int = 1000
) -> ModelSpec:
    """Build a DenseNet spec.

    Every dense layer is the standard bottleneck pair
    ``1x1 -> 4*growth`` then ``3x3 -> growth``, concatenated onto the
    running feature map; transitions halve channels and spatial size.
    """
    if name not in DENSENET_CONFIGS:
        raise KeyError(
            f"unknown DenseNet variant {name!r}; choose from {list(DENSENET_CONFIGS)}"
        )
    block_config, growth, stem = DENSENET_CONFIGS[name]
    builder = SpecBuilder(name, (3, input_size, input_size))
    if input_size >= 64:
        builder.conv(stem, 7, stride=2, padding=3, name="stem.conv")
        builder.pool(3, 2, padding=1)
    else:
        builder.conv(stem, 3, stride=1, padding=1, name="stem.conv")
    channels = stem
    for block_idx, num_layers in enumerate(block_config, start=1):
        for layer_idx in range(num_layers):
            tag = f"dense{block_idx}.{layer_idx}"
            height, width = builder.height, builder.width
            builder.set_shape(channels, height, width)
            builder.conv(4 * growth, 1, name=f"{tag}.conv1")
            builder.conv(growth, 3, padding=1, name=f"{tag}.conv2")
            channels += growth
            builder.set_shape(channels, builder.height, builder.width)
        if block_idx != len(block_config):
            channels //= 2
            builder.conv(channels, 1, name=f"trans{block_idx}.conv")
            builder.pool(2, 2)
    builder.global_pool()
    builder.linear(num_classes, name="fc")
    return builder.build()
