"""Full-size MobileNet-V2 layer specs (Sandler et al. 2018)."""

from __future__ import annotations

from .specs import ModelSpec, SpecBuilder

# (expansion t, output channels c, repeats n, first stride s)
MOBILENET_V2_CONFIG: list[tuple[int, int, int, int]] = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def _inverted_residual(
    builder: SpecBuilder, expansion: int, out_channels: int, stride: int, tag: str
) -> None:
    in_channels = builder.channels
    hidden = in_channels * expansion
    if expansion != 1:
        builder.conv(hidden, 1, name=f"{tag}.expand")
    builder.conv(hidden, 3, stride=stride, padding=1, depthwise=True, name=f"{tag}.dw")
    builder.conv(out_channels, 1, name=f"{tag}.project")


def mobilenet_v2_spec(
    input_size: int = 224, num_classes: int = 1000
) -> ModelSpec:
    """Build the MobileNet-V2 spec.

    For CIFAR-size inputs the stem and the first down-sampling stage run
    at stride 1, the common 32x32 adaptation.
    """
    builder = SpecBuilder("MobileNet-V2", (3, input_size, input_size))
    small_input = input_size < 64
    builder.conv(32, 3, stride=1 if small_input else 2, padding=1, name="stem.conv")
    block = 0
    for stage_idx, (t, c, n, s) in enumerate(MOBILENET_V2_CONFIG):
        for i in range(n):
            stride = s if i == 0 else 1
            if small_input and stage_idx == 1 and i == 0:
                stride = 1
            _inverted_residual(builder, t, c, stride, tag=f"block{block}")
            block += 1
    builder.conv(1280, 1, name="head.conv")
    builder.global_pool()
    builder.linear(num_classes, name="classifier")
    return builder.build()
