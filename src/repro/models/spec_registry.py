"""Registry mapping paper model/dataset names to full-size specs.

``spec_for(model, dataset)`` is the single entry point the experiment
harness uses: the paper reports performance "in relation to the dataset,
as the model's structure exhibits slight changes depending on the input
size" (§6.3), which this registry reproduces by switching the input
resolution and classifier head per dataset.
"""

from __future__ import annotations

from typing import Callable

from .spec_densenet import densenet_spec
from .spec_inception import inception_v3_spec, inception_v4_spec
from .spec_mobilenet import mobilenet_v2_spec
from .spec_resnet import resnet_spec
from .spec_transformer import transformer_spec
from .spec_vgg import vgg_spec
from .spec_yolo import yolov3_spec
from .specs import ModelSpec

# The 13 classification models of Table 1 / Figs 17-21, in paper order.
CLASSIFICATION_MODELS: list[str] = [
    "ResNet50",
    "ResNet101",
    "ResNet152",
    "Inception-V4",
    "Inception-V3",
    "VGG13",
    "VGG16",
    "VGG19",
    "DenseNet121",
    "DenseNet161",
    "DenseNet169",
    "DenseNet201",
    "MobileNet-V2",
]

DATASETS: list[str] = ["Cifar10", "Cifar100", "ImageNet"]

_DATASET_CLASSES: dict[str, int] = {
    "Cifar10": 10,
    "Cifar100": 100,
    "ImageNet": 1000,
}

_DATASET_INPUT: dict[str, int] = {"Cifar10": 32, "Cifar100": 32, "ImageNet": 224}

# Inception traditionally runs at 299x299 on ImageNet.
_INCEPTION_IMAGENET_INPUT = 299


def _input_size(model: str, dataset: str) -> int:
    size = _DATASET_INPUT[dataset]
    if dataset == "ImageNet" and model.startswith("Inception"):
        return _INCEPTION_IMAGENET_INPUT
    return size


def spec_for(model: str, dataset: str = "ImageNet") -> ModelSpec:
    """Return the full-size :class:`ModelSpec` for a model/dataset pair."""
    if dataset not in _DATASET_CLASSES:
        raise KeyError(f"unknown dataset {dataset!r}; choose from {DATASETS}")
    classes = _DATASET_CLASSES[dataset]
    size = _input_size(model, dataset)
    builders: dict[str, Callable[[], ModelSpec]] = {
        "ResNet50": lambda: resnet_spec("ResNet50", size, classes),
        "ResNet101": lambda: resnet_spec("ResNet101", size, classes),
        "ResNet152": lambda: resnet_spec("ResNet152", size, classes),
        "Inception-V3": lambda: inception_v3_spec(size, classes),
        "Inception-V4": lambda: inception_v4_spec(size, classes),
        "VGG13": lambda: vgg_spec("VGG13", size, classes),
        "VGG16": lambda: vgg_spec("VGG16", size, classes),
        "VGG19": lambda: vgg_spec("VGG19", size, classes),
        "DenseNet121": lambda: densenet_spec("DenseNet121", size, classes),
        "DenseNet161": lambda: densenet_spec("DenseNet161", size, classes),
        "DenseNet169": lambda: densenet_spec("DenseNet169", size, classes),
        "DenseNet201": lambda: densenet_spec("DenseNet201", size, classes),
        "MobileNet-V2": lambda: mobilenet_v2_spec(size, classes),
        "Transformer": lambda: transformer_spec(),
        "YOLO-v3": lambda: yolov3_spec(),
    }
    if model not in builders:
        raise KeyError(f"unknown model {model!r}; choose from {sorted(builders)}")
    return builders[model]()


def all_specs(dataset: str) -> dict[str, ModelSpec]:
    """Specs for all 13 classification models on one dataset."""
    return {name: spec_for(name, dataset) for name in CLASSIFICATION_MODELS}
