"""Full-size ResNet layer specs (He et al. 2016), bottleneck variants."""

from __future__ import annotations

from .specs import ModelSpec, SpecBuilder

# Bottleneck block counts per stage.
RESNET_CONFIGS: dict[str, tuple[int, int, int, int]] = {
    "ResNet50": (3, 4, 6, 3),
    "ResNet101": (3, 4, 23, 3),
    "ResNet152": (3, 8, 36, 3),
}

_STAGE_MID = (64, 128, 256, 512)
_EXPANSION = 4


def _bottleneck(
    builder: SpecBuilder, mid: int, stride: int, downsample: bool, tag: str
) -> None:
    """One bottleneck: 1x1 reduce -> 3x3 -> 1x1 expand (+1x1 shortcut)."""
    in_channels = builder.channels
    in_h, in_w = builder.height, builder.width
    builder.conv(mid, 1, name=f"{tag}.conv1")
    builder.conv(mid, 3, stride=stride, padding=1, name=f"{tag}.conv2")
    builder.conv(mid * _EXPANSION, 1, name=f"{tag}.conv3")
    if downsample:
        # Shortcut projection runs on the block input; emit it with the
        # correct input shape, then restore the main-path output shape.
        out_c, out_h, out_w = builder.channels, builder.height, builder.width
        builder.set_shape(in_channels, in_h, in_w)
        builder.conv(mid * _EXPANSION, 1, stride=stride, name=f"{tag}.downsample")
        builder.set_shape(out_c, out_h, out_w)


def resnet_spec(name: str, input_size: int = 224, num_classes: int = 1000) -> ModelSpec:
    """Build a ResNet-50/101/152 spec.

    ``input_size=32`` uses the standard CIFAR stem (3x3 stride-1 conv, no
    max-pool); ``input_size=224`` uses the ImageNet stem (7x7/2 + pool).
    """
    if name not in RESNET_CONFIGS:
        raise KeyError(
            f"unknown ResNet variant {name!r}; choose from {list(RESNET_CONFIGS)}"
        )
    blocks = RESNET_CONFIGS[name]
    builder = SpecBuilder(name, (3, input_size, input_size))
    if input_size >= 64:
        builder.conv(64, 7, stride=2, padding=3, name="stem.conv")
        builder.pool(3, 2, padding=1)
    else:
        builder.conv(64, 3, stride=1, padding=1, name="stem.conv")
    for stage, (count, mid) in enumerate(zip(blocks, _STAGE_MID), start=1):
        for block in range(count):
            stride = 2 if (stage > 1 and block == 0) else 1
            downsample = block == 0  # channel change (or stride) on entry
            _bottleneck(
                builder, mid, stride, downsample, tag=f"layer{stage}.{block}"
            )
    builder.global_pool()
    builder.linear(num_classes, name="fc")
    return builder.build()
