"""Full-size Inception-V3 / Inception-V4 layer specs.

Block structures and channel counts follow the published architectures
(Szegedy et al. 2016).  Each branch of a mixed block is emitted as a
sequence of conv specs that all read the block's input shape; the
builder's tracked shape is then set to the concatenated output.  1x7/7x1
factorized convolutions use the rectangular-kernel support of
:class:`~repro.models.specs.LayerSpec`.
"""

from __future__ import annotations

from .specs import ModelSpec, SpecBuilder

# A branch is a list of conv tuples:
# (out_ch, kh, kw, stride, pad_h, pad_w), with kw=0 meaning square.
Branch = list[tuple[int, int, int, int, int, int]]


def _emit_branches(
    builder: SpecBuilder, branches: list[Branch], tag: str, pool_first: list[bool]
) -> None:
    """Emit all branches from the current shape, then set concat output."""
    in_shape = (builder.channels, builder.height, builder.width)
    out_channels = 0
    out_h = out_w = None
    for b_idx, branch in enumerate(branches):
        builder.set_shape(*in_shape)
        if pool_first[b_idx]:
            builder.pool(3, 1, padding=1)
        last_out = in_shape[0]
        for c_idx, (out_ch, kh, kw, stride, ph, pw) in enumerate(branch):
            builder.conv(
                out_ch,
                kh,
                stride=stride,
                padding=ph,
                kernel_w=kw,
                padding_w=pw,
                name=f"{tag}.b{b_idx}.conv{c_idx}",
            )
            last_out = out_ch
        if branch:
            out_channels += last_out
        else:
            out_channels += in_shape[0]  # bare pooling branch
        out_h, out_w = builder.height, builder.width
    builder.set_shape(out_channels, out_h, out_w)


def _sq(out_ch: int, k: int, stride: int = 1, pad: int = 0) -> tuple:
    return (out_ch, k, 0, stride, pad, pad)


def _rect(out_ch: int, kh: int, kw: int, ph: int, pw: int) -> tuple:
    return (out_ch, kh, kw, 1, ph, pw)


# ----------------------------------------------------------------------
# Inception-V3
# ----------------------------------------------------------------------
def _v3_inception_a(builder: SpecBuilder, pool_features: int, tag: str) -> None:
    branches = [
        [_sq(64, 1)],
        [_sq(48, 1), _sq(64, 5, pad=2)],
        [_sq(64, 1), _sq(96, 3, pad=1), _sq(96, 3, pad=1)],
        [_sq(pool_features, 1)],
    ]
    _emit_branches(builder, branches, tag, pool_first=[False, False, False, True])


def _v3_reduction_a(builder: SpecBuilder, tag: str) -> None:
    in_shape = (builder.channels, builder.height, builder.width)
    out_channels = in_shape[0]  # pool branch passes channels through
    builder.conv(384, 3, stride=2, name=f"{tag}.b0.conv0")
    out_channels += 384
    out_h, out_w = builder.height, builder.width
    builder.set_shape(*in_shape)
    builder.conv(64, 1, name=f"{tag}.b1.conv0")
    builder.conv(96, 3, padding=1, name=f"{tag}.b1.conv1")
    builder.conv(96, 3, stride=2, name=f"{tag}.b1.conv2")
    out_channels += 96
    builder.set_shape(*in_shape)
    builder.pool(3, 2)
    builder.set_shape(out_channels, out_h, out_w)


def _v3_inception_b(builder: SpecBuilder, c7: int, tag: str) -> None:
    branches = [
        [_sq(192, 1)],
        [_sq(c7, 1), _rect(c7, 1, 7, 0, 3), _rect(192, 7, 1, 3, 0)],
        [
            _sq(c7, 1),
            _rect(c7, 7, 1, 3, 0),
            _rect(c7, 1, 7, 0, 3),
            _rect(c7, 7, 1, 3, 0),
            _rect(192, 1, 7, 0, 3),
        ],
        [_sq(192, 1)],
    ]
    _emit_branches(builder, branches, tag, pool_first=[False, False, False, True])


def _v3_reduction_b(builder: SpecBuilder, tag: str) -> None:
    in_shape = (builder.channels, builder.height, builder.width)
    out_channels = in_shape[0]
    builder.conv(192, 1, name=f"{tag}.b0.conv0")
    builder.conv(320, 3, stride=2, name=f"{tag}.b0.conv1")
    out_channels += 320
    out_h, out_w = builder.height, builder.width
    builder.set_shape(*in_shape)
    builder.conv(192, 1, name=f"{tag}.b1.conv0")
    builder.conv(192, 1, kernel_w=7, padding=0, padding_w=3, name=f"{tag}.b1.conv1")
    builder.conv(192, 7, kernel_w=1, padding=3, padding_w=0, name=f"{tag}.b1.conv2")
    builder.conv(192, 3, stride=2, name=f"{tag}.b1.conv3")
    out_channels += 192
    builder.set_shape(*in_shape)
    builder.pool(3, 2)
    builder.set_shape(out_channels, out_h, out_w)


def _v3_inception_c(builder: SpecBuilder, tag: str) -> None:
    branches = [
        [_sq(320, 1)],
        [_sq(384, 1), _rect(384, 1, 3, 0, 1)],
        [_sq(384, 1), _rect(384, 3, 1, 1, 0)],
        [_sq(448, 1), _sq(384, 3, pad=1), _rect(384, 1, 3, 0, 1)],
        [_sq(448, 1), _sq(384, 3, pad=1), _rect(384, 3, 1, 1, 0)],
        [_sq(192, 1)],
    ]
    # The two (1x3, 3x1) pairs are the split sub-branches of the official
    # block; emitting them as separate branches reproduces both channel
    # counts (320 + 768 + 768 + 192 = 2048) and MACs.
    _emit_branches(
        builder, branches, tag, pool_first=[False] * 5 + [True]
    )


def inception_v3_spec(input_size: int = 299, num_classes: int = 1000) -> ModelSpec:
    """Inception-V3: stem + 3xA, reduction, 4xB, reduction, 2xC."""
    builder = SpecBuilder("Inception-V3", (3, input_size, input_size))
    if input_size >= 128:
        builder.conv(32, 3, stride=2, name="stem.conv0")
        builder.conv(32, 3, name="stem.conv1")
        builder.conv(64, 3, padding=1, name="stem.conv2")
        builder.pool(3, 2)
        builder.conv(80, 1, name="stem.conv3")
        builder.conv(192, 3, name="stem.conv4")
        builder.pool(3, 2)
    else:
        # CIFAR adaptation: stride-1 stem, no pooling.
        builder.conv(32, 3, padding=1, name="stem.conv0")
        builder.conv(32, 3, padding=1, name="stem.conv1")
        builder.conv(64, 3, padding=1, name="stem.conv2")
        builder.conv(80, 1, name="stem.conv3")
        builder.conv(192, 3, padding=1, name="stem.conv4")
    _v3_inception_a(builder, 32, "mixed0")
    _v3_inception_a(builder, 64, "mixed1")
    _v3_inception_a(builder, 64, "mixed2")
    _v3_reduction_a(builder, "mixed3")
    _v3_inception_b(builder, 128, "mixed4")
    _v3_inception_b(builder, 160, "mixed5")
    _v3_inception_b(builder, 160, "mixed6")
    _v3_inception_b(builder, 192, "mixed7")
    _v3_reduction_b(builder, "mixed8")
    _v3_inception_c(builder, "mixed9")
    _v3_inception_c(builder, "mixed10")
    builder.global_pool()
    builder.linear(num_classes, name="fc")
    return builder.build()


# ----------------------------------------------------------------------
# Inception-V4
# ----------------------------------------------------------------------
def _v4_inception_a(builder: SpecBuilder, tag: str) -> None:
    branches = [
        [_sq(96, 1)],
        [_sq(64, 1), _sq(96, 3, pad=1)],
        [_sq(64, 1), _sq(96, 3, pad=1), _sq(96, 3, pad=1)],
        [_sq(96, 1)],
    ]
    _emit_branches(builder, branches, tag, pool_first=[False, False, False, True])


def _v4_reduction_a(builder: SpecBuilder, tag: str) -> None:
    in_shape = (builder.channels, builder.height, builder.width)
    out_channels = in_shape[0]
    builder.conv(384, 3, stride=2, name=f"{tag}.b0.conv0")
    out_channels += 384
    out_h, out_w = builder.height, builder.width
    builder.set_shape(*in_shape)
    builder.conv(192, 1, name=f"{tag}.b1.conv0")
    builder.conv(224, 3, padding=1, name=f"{tag}.b1.conv1")
    builder.conv(256, 3, stride=2, name=f"{tag}.b1.conv2")
    out_channels += 256
    builder.set_shape(*in_shape)
    builder.pool(3, 2)
    builder.set_shape(out_channels, out_h, out_w)


def _v4_inception_b(builder: SpecBuilder, tag: str) -> None:
    branches = [
        [_sq(384, 1)],
        [_sq(192, 1), _rect(224, 1, 7, 0, 3), _rect(256, 7, 1, 3, 0)],
        [
            _sq(192, 1),
            _rect(192, 7, 1, 3, 0),
            _rect(224, 1, 7, 0, 3),
            _rect(224, 7, 1, 3, 0),
            _rect(256, 1, 7, 0, 3),
        ],
        [_sq(128, 1)],
    ]
    _emit_branches(builder, branches, tag, pool_first=[False, False, False, True])


def _v4_reduction_b(builder: SpecBuilder, tag: str) -> None:
    in_shape = (builder.channels, builder.height, builder.width)
    out_channels = in_shape[0]
    builder.conv(192, 1, name=f"{tag}.b0.conv0")
    builder.conv(192, 3, stride=2, name=f"{tag}.b0.conv1")
    out_channels += 192
    out_h, out_w = builder.height, builder.width
    builder.set_shape(*in_shape)
    builder.conv(256, 1, name=f"{tag}.b1.conv0")
    builder.conv(256, 1, kernel_w=7, padding=0, padding_w=3, name=f"{tag}.b1.conv1")
    builder.conv(320, 7, kernel_w=1, padding=3, padding_w=0, name=f"{tag}.b1.conv2")
    builder.conv(320, 3, stride=2, name=f"{tag}.b1.conv3")
    out_channels += 320
    builder.set_shape(*in_shape)
    builder.pool(3, 2)
    builder.set_shape(out_channels, out_h, out_w)


def _v4_inception_c(builder: SpecBuilder, tag: str) -> None:
    branches = [
        [_sq(256, 1)],
        [_sq(384, 1), _rect(256, 1, 3, 0, 1)],
        [_sq(384, 1), _rect(256, 3, 1, 1, 0)],
        [_sq(384, 1), _rect(448, 1, 3, 0, 1), _rect(512, 3, 1, 1, 0), _rect(256, 3, 1, 1, 0)],
        [_sq(384, 1), _rect(448, 1, 3, 0, 1), _rect(512, 3, 1, 1, 0), _rect(256, 1, 3, 0, 1)],
        [_sq(256, 1)],
    ]
    _emit_branches(builder, branches, tag, pool_first=[False] * 5 + [True])


def inception_v4_spec(input_size: int = 299, num_classes: int = 1000) -> ModelSpec:
    """Inception-V4: stem + 4xA, reduction, 7xB, reduction, 3xC."""
    builder = SpecBuilder("Inception-V4", (3, input_size, input_size))
    if input_size >= 128:
        builder.conv(32, 3, stride=2, name="stem.conv0")
        builder.conv(32, 3, name="stem.conv1")
        builder.conv(64, 3, padding=1, name="stem.conv2")
        # Mixed 3a: maxpool || conv 96/3x3 s2.
        in_shape = (builder.channels, builder.height, builder.width)
        builder.conv(96, 3, stride=2, name="stem.mixed3a.conv")
        out_h, out_w = builder.height, builder.width
        builder.set_shape(*in_shape)
        builder.pool(3, 2)
        builder.set_shape(96 + in_shape[0], out_h, out_w)
        # Mixed 4a: two conv branches -> 96 + 96 = 192.
        in_shape = (builder.channels, builder.height, builder.width)
        builder.conv(64, 1, name="stem.mixed4a.b0.conv0")
        builder.conv(96, 3, name="stem.mixed4a.b0.conv1")
        out_h, out_w = builder.height, builder.width
        builder.set_shape(*in_shape)
        builder.conv(64, 1, name="stem.mixed4a.b1.conv0")
        builder.conv(64, 7, kernel_w=1, padding=3, padding_w=0, name="stem.mixed4a.b1.conv1")
        builder.conv(64, 1, kernel_w=7, padding=0, padding_w=3, name="stem.mixed4a.b1.conv2")
        builder.conv(96, 3, name="stem.mixed4a.b1.conv3")
        builder.set_shape(192, out_h, out_w)
        # Mixed 5a: conv 192/3x3 s2 || maxpool -> 384.
        in_shape = (builder.channels, builder.height, builder.width)
        builder.conv(192, 3, stride=2, name="stem.mixed5a.conv")
        out_h, out_w = builder.height, builder.width
        builder.set_shape(*in_shape)
        builder.pool(3, 2)
        builder.set_shape(192 + in_shape[0], out_h, out_w)
    else:
        builder.conv(32, 3, padding=1, name="stem.conv0")
        builder.conv(32, 3, padding=1, name="stem.conv1")
        builder.conv(64, 3, padding=1, name="stem.conv2")
        builder.conv(192, 3, padding=1, name="stem.conv3")
        builder.conv(384, 3, padding=1, name="stem.conv4")
    for i in range(4):
        _v4_inception_a(builder, f"inceptionA.{i}")
    _v4_reduction_a(builder, "reductionA")
    for i in range(7):
        _v4_inception_b(builder, f"inceptionB.{i}")
    _v4_reduction_b(builder, "reductionB")
    for i in range(3):
        _v4_inception_c(builder, f"inceptionC.{i}")
    builder.global_pool()
    builder.linear(num_classes, name="fc")
    return builder.build()
