"""Full-size Transformer layer specs for the Multi30k experiment.

The paper (§6.4) uses a Transformer with three encoder and three decoder
layers.  Remaining hyper-parameters follow the base model of Vaswani et
al. 2017 (d_model=512, 8 heads, d_ff=2048) with a Multi30k-scale
vocabulary.  Attention projections and feed-forward layers are LINEAR
specs (predictable); the score/context products are weight-less MATMUL
specs that the accelerator still executes.
"""

from __future__ import annotations

from .specs import LayerKind, LayerSpec, ModelSpec


def _linear(name: str, in_features: int, out_features: int, positions: int) -> LayerSpec:
    return LayerSpec(
        name=name,
        kind=LayerKind.LINEAR,
        in_channels=in_features,
        out_channels=out_features,
        out_h=positions,
        out_w=1,
    )


def _matmul(name: str, m: int, k: int, positions: int) -> LayerSpec:
    return LayerSpec(
        name=name,
        kind=LayerKind.MATMUL,
        in_channels=k,
        out_channels=m,
        out_h=positions,
        out_w=1,
    )


def _attention(
    layers: list[LayerSpec],
    tag: str,
    d_model: int,
    num_heads: int,
    len_q: int,
    len_k: int,
) -> None:
    head_dim = d_model // num_heads
    for proj, length in (("q", len_q), ("k", len_k), ("v", len_k)):
        layers.append(_linear(f"{tag}.{proj}_proj", d_model, d_model, length))
    # Scores: for each of len_q rows, a (len_k x head_dim) product per head.
    layers.append(_matmul(f"{tag}.scores", len_k, head_dim, len_q * num_heads))
    layers.append(_matmul(f"{tag}.context", head_dim, len_k, len_q * num_heads))
    layers.append(_linear(f"{tag}.out_proj", d_model, d_model, len_q))


def _ffn(layers: list[LayerSpec], tag: str, d_model: int, d_ff: int, length: int) -> None:
    layers.append(_linear(f"{tag}.ff1", d_model, d_ff, length))
    layers.append(_linear(f"{tag}.ff2", d_ff, d_model, length))


def transformer_spec(
    num_encoder_layers: int = 3,
    num_decoder_layers: int = 3,
    d_model: int = 512,
    num_heads: int = 8,
    d_ff: int = 2048,
    src_len: int = 32,
    tgt_len: int = 32,
    vocab_size: int = 8000,
) -> ModelSpec:
    """Build the seq2seq Transformer spec (per-sample sequence lengths)."""
    if d_model % num_heads != 0:
        raise ValueError("d_model must be divisible by num_heads")
    layers: list[LayerSpec] = []
    for i in range(num_encoder_layers):
        _attention(layers, f"enc{i}.self_attn", d_model, num_heads, src_len, src_len)
        _ffn(layers, f"enc{i}", d_model, d_ff, src_len)
    for i in range(num_decoder_layers):
        _attention(layers, f"dec{i}.self_attn", d_model, num_heads, tgt_len, tgt_len)
        _attention(layers, f"dec{i}.cross_attn", d_model, num_heads, tgt_len, src_len)
        _ffn(layers, f"dec{i}", d_model, d_ff, tgt_len)
    layers.append(_linear("generator", d_model, vocab_size, tgt_len))
    spec = ModelSpec(name="Transformer", input_shape=(1, src_len, 1), layers=layers)
    return spec
