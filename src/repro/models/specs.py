"""Layer-shape specifications consumed by the accelerator simulator.

The performance/energy side of the paper (Figs 16-21, cycle columns of
Tables 2-3) never executes real arithmetic: it costs each layer of the
*full-size* networks on a systolic-array model.  A :class:`LayerSpec`
captures exactly the dimensions that the cost model needs.

Convolutions are costed as the GEMM their im2col formulation produces:

* forward: ``(M=out_ch) x (K=in_ch*k*k) x (N=out_h*out_w*batch)``
* backward: two GEMMs — dX (``K x M x N``) and dW (``M x N -> K``) — which
  is why the paper's "BW takes twice as long as FW" assumption emerges
  naturally from the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator


class LayerKind(str, Enum):
    """Kinds of layers the cost model distinguishes."""

    CONV = "conv"
    DEPTHWISE_CONV = "depthwise_conv"
    LINEAR = "linear"
    MATMUL = "matmul"  # weight-less GEMM (attention scores/context)
    POOL = "pool"
    NORM = "norm"
    ACT = "act"


@dataclass(frozen=True)
class LayerSpec:
    """Shape record for one layer of a full-size network."""

    name: str
    kind: LayerKind
    in_channels: int = 0
    out_channels: int = 0
    kernel_size: int = 1
    stride: int = 1
    padding: int = 0
    in_h: int = 1
    in_w: int = 1
    out_h: int = 1
    out_w: int = 1
    # Rectangular kernels (Inception 1x7 / 7x1): 0 means "= kernel_size".
    kernel_w: int = 0
    # Rectangular padding: -1 means "= padding".
    padding_w: int = -1

    # ------------------------------------------------------------------
    @property
    def kernel_h_eff(self) -> int:
        return self.kernel_size

    @property
    def kernel_w_eff(self) -> int:
        return self.kernel_w if self.kernel_w else self.kernel_size

    @property
    def padding_w_eff(self) -> int:
        return self.padding_w if self.padding_w >= 0 else self.padding

    @property
    def kernel_area(self) -> int:
        return self.kernel_h_eff * self.kernel_w_eff

    @property
    def weight_params(self) -> int:
        """Trainable weight count (excluding bias)."""
        if self.kind == LayerKind.CONV:
            return self.out_channels * self.in_channels * self.kernel_area
        if self.kind == LayerKind.DEPTHWISE_CONV:
            return self.out_channels * self.kernel_area
        if self.kind == LayerKind.LINEAR:
            return self.out_channels * self.in_channels
        if self.kind == LayerKind.NORM:
            return 2 * self.out_channels
        return 0

    @property
    def output_size(self) -> int:
        """Activation volume produced per sample."""
        return self.out_channels * self.out_h * self.out_w

    @property
    def input_size(self) -> int:
        return self.in_channels * self.in_h * self.in_w

    def gemm_dims(self, batch: int) -> tuple[int, int, int]:
        """(M, K, N) of the forward GEMM for ``batch`` samples."""
        if self.kind == LayerKind.CONV:
            k = self.in_channels * self.kernel_area
            return self.out_channels, k, self.out_h * self.out_w * batch
        if self.kind == LayerKind.DEPTHWISE_CONV:
            # Each channel is an independent tiny GEMM; modelled as one
            # GEMM with K = k*k and N spanning channels * positions.
            return 1, self.kernel_area, self.out_channels * self.out_h * self.out_w * batch
        if self.kind in (LayerKind.LINEAR, LayerKind.MATMUL):
            return self.out_channels, self.in_channels, self.out_h * batch
        raise ValueError(f"layer kind {self.kind} has no GEMM")

    def macs_forward(self, batch: int = 1) -> int:
        """Multiply-accumulate count of the forward pass."""
        if self.kind in (
            LayerKind.CONV,
            LayerKind.DEPTHWISE_CONV,
            LayerKind.LINEAR,
            LayerKind.MATMUL,
        ):
            m, k, n = self.gemm_dims(batch)
            return m * k * n
        return 0

    @property
    def is_compute(self) -> bool:
        return self.kind in (
            LayerKind.CONV,
            LayerKind.DEPTHWISE_CONV,
            LayerKind.LINEAR,
            LayerKind.MATMUL,
        )

    @property
    def is_predictable(self) -> bool:
        """Whether ADA-GP predicts this layer's weight gradients."""
        return self.kind in (
            LayerKind.CONV,
            LayerKind.DEPTHWISE_CONV,
            LayerKind.LINEAR,
        )


@dataclass
class ModelSpec:
    """An ordered list of layer specs plus identifying metadata."""

    name: str
    input_shape: tuple[int, int, int]  # (channels, height, width)
    layers: list[LayerSpec] = field(default_factory=list)

    def __iter__(self) -> Iterator[LayerSpec]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    # ------------------------------------------------------------------
    @property
    def compute_layers(self) -> list[LayerSpec]:
        return [layer for layer in self.layers if layer.is_compute]

    @property
    def predictable(self) -> list[LayerSpec]:
        return [layer for layer in self.layers if layer.is_predictable]

    @property
    def total_weight_params(self) -> int:
        return sum(layer.weight_params for layer in self.layers)

    def total_macs(self, batch: int = 1) -> int:
        return sum(layer.macs_forward(batch) for layer in self.layers)

    @property
    def max_gradient_row(self) -> int:
        """Largest per-output-unit gradient row (paper §3.6 FC sizing)."""
        best = 0
        for layer in self.predictable:
            if layer.kind == LayerKind.DEPTHWISE_CONV:
                row = layer.kernel_area
            elif layer.kind == LayerKind.CONV:
                row = layer.in_channels * layer.kernel_area
            else:
                row = layer.in_channels
            best = max(best, row)
        return best


class SpecBuilder:
    """Incremental builder that tracks the running activation shape."""

    def __init__(self, name: str, input_shape: tuple[int, int, int]) -> None:
        self.spec = ModelSpec(name=name, input_shape=input_shape)
        self.channels, self.height, self.width = input_shape
        self._counter = 0

    # ------------------------------------------------------------------
    def _next_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    @staticmethod
    def _out_size(size: int, kernel: int, stride: int, padding: int) -> int:
        return (size + 2 * padding - kernel) // stride + 1

    # ------------------------------------------------------------------
    def conv(
        self,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        name: str | None = None,
        depthwise: bool = False,
        kernel_w: int = 0,
        padding_w: int | None = None,
    ) -> "SpecBuilder":
        kw = kernel_w if kernel_w else kernel_size
        pw = padding_w if padding_w is not None else padding
        out_h = self._out_size(self.height, kernel_size, stride, padding)
        out_w = self._out_size(self.width, kw, stride, pw)
        if out_h <= 0 or out_w <= 0:
            raise ValueError(
                f"conv reduces spatial size below 1 "
                f"({self.height}x{self.width}, k={kernel_size}, s={stride})"
            )
        kind = LayerKind.DEPTHWISE_CONV if depthwise else LayerKind.CONV
        self.spec.layers.append(
            LayerSpec(
                name=name or self._next_name("conv"),
                kind=kind,
                in_channels=self.channels,
                out_channels=out_channels,
                kernel_size=kernel_size,
                stride=stride,
                padding=padding,
                in_h=self.height,
                in_w=self.width,
                out_h=out_h,
                out_w=out_w,
                kernel_w=kernel_w,
                padding_w=-1 if padding_w is None else padding_w,
            )
        )
        self.channels, self.height, self.width = out_channels, out_h, out_w
        return self

    def pool(
        self, kernel_size: int, stride: int | None = None, padding: int = 0
    ) -> "SpecBuilder":
        stride = stride if stride is not None else kernel_size
        out_h = self._out_size(self.height, kernel_size, stride, padding)
        out_w = self._out_size(self.width, kernel_size, stride, padding)
        self.spec.layers.append(
            LayerSpec(
                name=self._next_name("pool"),
                kind=LayerKind.POOL,
                in_channels=self.channels,
                out_channels=self.channels,
                kernel_size=kernel_size,
                stride=stride,
                padding=padding,
                in_h=self.height,
                in_w=self.width,
                out_h=out_h,
                out_w=out_w,
            )
        )
        self.height, self.width = out_h, out_w
        return self

    def global_pool(self) -> "SpecBuilder":
        self.spec.layers.append(
            LayerSpec(
                name=self._next_name("gap"),
                kind=LayerKind.POOL,
                in_channels=self.channels,
                out_channels=self.channels,
                kernel_size=self.height,
                stride=self.height,
                in_h=self.height,
                in_w=self.width,
                out_h=1,
                out_w=1,
            )
        )
        self.height = self.width = 1
        return self

    def linear(self, out_features: int, name: str | None = None) -> "SpecBuilder":
        in_features = self.channels * self.height * self.width
        self.spec.layers.append(
            LayerSpec(
                name=name or self._next_name("fc"),
                kind=LayerKind.LINEAR,
                in_channels=in_features,
                out_channels=out_features,
                in_h=1,
                in_w=1,
                out_h=1,
                out_w=1,
            )
        )
        self.channels, self.height, self.width = out_features, 1, 1
        return self

    def matmul(
        self, m: int, k: int, positions: int, name: str | None = None
    ) -> "SpecBuilder":
        """A weight-less GEMM (attention); does not change tracked shape."""
        self.spec.layers.append(
            LayerSpec(
                name=name or self._next_name("matmul"),
                kind=LayerKind.MATMUL,
                in_channels=k,
                out_channels=m,
                out_h=positions,
                out_w=1,
            )
        )
        return self

    def set_shape(self, channels: int, height: int, width: int) -> "SpecBuilder":
        """Override the tracked shape (used after concat-style merges)."""
        self.channels, self.height, self.width = channels, height, width
        return self

    def build(self) -> ModelSpec:
        return self.spec
