"""Trainable mini YOLO-style grid detector (paper §6.4, Table 3).

A single-scale grid detector in the YOLO family: a small convolutional
backbone downsamples the input to an ``S x S`` grid, and each cell
predicts ``(objectness, x, y, w, h, class logits...)`` for one anchor.
Used with the synthetic detection dataset of :mod:`repro.data.detection`
to exercise the same training/metric pipeline (class accuracy, mAP) the
paper evaluates with YOLO-v3 on PascalVOC.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.layers.blocks import conv_bn_relu
from ..nn.module import Module


class MiniYolo(Module):
    """Backbone + detection head producing (batch, 5 + classes, S, S)."""

    def __init__(
        self,
        num_classes: int = 3,
        grid_size: int = 4,
        input_size: int = 32,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        if input_size % grid_size != 0:
            raise ValueError(
                f"input_size {input_size} must be a multiple of grid {grid_size}"
            )
        self.num_classes = num_classes
        self.grid_size = grid_size
        downsamples = int(np.log2(input_size // grid_size))
        if 2**downsamples * grid_size != input_size:
            raise ValueError("input_size / grid_size must be a power of two")
        layers: list[nn.Module] = list(conv_bn_relu(3, 16, 3, padding=1, rng=rng))
        channels = 16
        for _ in range(downsamples):
            nxt = min(channels * 2, 64)
            layers.extend(conv_bn_relu(channels, nxt, 3, stride=2, padding=1, rng=rng))
            # Darknet-style body at each scale; intra-cell box offsets
            # must be encoded across channels once the spatial resolution
            # drops, so the width matters for localization quality.
            layers.extend(conv_bn_relu(nxt, nxt // 2, 1, rng=rng))
            layers.extend(conv_bn_relu(nxt // 2, nxt, 3, padding=1, rng=rng))
            channels = nxt
        layers.extend(conv_bn_relu(channels, channels, 3, padding=1, rng=rng))
        layers.append(nn.Conv2d(channels, 5 + num_classes, 1, rng=rng))
        self.net = nn.Sequential(*layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.net(x)
        if out.shape[2] != self.grid_size:
            raise RuntimeError(
                f"head produced grid {out.shape[2]}, expected {self.grid_size}"
            )
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_out)


class YoloLoss:
    """Composite detection loss with analytic gradient.

    Targets have shape ``(batch, 5 + classes, S, S)``: channel 0 is the
    objectness indicator, channels 1-4 are (x, y, w, h) in [0, 1]
    relative to the cell, and the rest is a one-hot class vector.
    Objectness uses BCE everywhere; box and class terms apply only where
    an object is present (standard YOLO formulation).
    """

    def __init__(
        self, lambda_box: float = 5.0, lambda_noobj: float = 0.5
    ) -> None:
        self.lambda_box = lambda_box
        self.lambda_noobj = lambda_noobj

    def __call__(
        self, prediction: np.ndarray, target: np.ndarray
    ) -> tuple[float, np.ndarray]:
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction {prediction.shape} != target {target.shape}"
            )
        batch = prediction.shape[0]
        grad = np.zeros_like(prediction)
        obj_target = target[:, 0]
        obj_mask = obj_target > 0.5
        num_cells = obj_target.size

        # Objectness: BCE with per-term weights (noobj down-weighted).
        obj_logit = prediction[:, 0]
        weights = np.where(obj_mask, 1.0, self.lambda_noobj)
        bce = (
            np.maximum(obj_logit, 0.0)
            - obj_logit * obj_target
            + np.log1p(np.exp(-np.abs(obj_logit)))
        )
        obj_loss = float((weights * bce).sum() / num_cells)
        grad[:, 0] = weights * (F.sigmoid(obj_logit) - obj_target) / num_cells

        num_obj = max(int(obj_mask.sum()), 1)

        # Box regression: sigmoid(xy) + raw wh, MSE on object cells.
        xy_pred = F.sigmoid(prediction[:, 1:3])
        xy_diff = (xy_pred - target[:, 1:3]) * obj_mask[:, None]
        wh_diff = (prediction[:, 3:5] - target[:, 3:5]) * obj_mask[:, None]
        box_loss = float(
            self.lambda_box * ((xy_diff**2).sum() + (wh_diff**2).sum()) / num_obj
        )
        grad[:, 1:3] = (
            2.0 * self.lambda_box * xy_diff * xy_pred * (1 - xy_pred) / num_obj
        )
        grad[:, 3:5] = 2.0 * self.lambda_box * wh_diff / num_obj

        # Classification: softmax cross entropy on object cells.
        class_logits = prediction[:, 5:]
        log_probs = F.log_softmax(class_logits, axis=1)
        class_target = target[:, 5:]
        class_loss = float(
            -(class_target * log_probs).sum(axis=1)[obj_mask].sum() / num_obj
        )
        probs = np.exp(log_probs)
        grad[:, 5:] = (probs - class_target) * obj_mask[:, None] / num_obj

        total = obj_loss + box_loss + class_loss
        return total, grad.astype(np.float32)


def decode_predictions(
    prediction: np.ndarray, conf_threshold: float = 0.5
) -> list[list[tuple]]:
    """Decode a batch of grid predictions into per-image detections.

    Returns, per image, a list of
    ``(class_id, confidence, x1, y1, x2, y2)`` in normalized image
    coordinates.
    """
    batch, channels, grid, _ = prediction.shape
    detections: list[list[tuple]] = []
    conf = F.sigmoid(prediction[:, 0])
    xy = F.sigmoid(prediction[:, 1:3])
    wh = np.clip(prediction[:, 3:5], 0.0, 1.0)
    class_ids = prediction[:, 5:].argmax(axis=1)
    for b in range(batch):
        found: list[tuple] = []
        for gy in range(grid):
            for gx in range(grid):
                c = float(conf[b, gy, gx])
                if c < conf_threshold:
                    continue
                cx = (gx + float(xy[b, 0, gy, gx])) / grid
                cy = (gy + float(xy[b, 1, gy, gx])) / grid
                w = float(wh[b, 0, gy, gx])
                h = float(wh[b, 1, gy, gx])
                found.append(
                    (
                        int(class_ids[b, gy, gx]),
                        c,
                        cx - w / 2,
                        cy - h / 2,
                        cx + w / 2,
                        cy + h / 2,
                    )
                )
        detections.append(found)
    return detections
