"""Multi-device pipeline schedules (GPipe/DAPPLE/Chimera) + ADA-GP overlays."""

from .adagp import StageTimes, model_stage_times, pipeline_speedup
from .schedules import (
    PipelineConfig,
    PipelineKind,
    batch_makespan,
    gp_batch_increment,
    gp_drain,
    sequence_makespan,
    training_phase_sequence,
)
from .simulator import (
    Task,
    Timeline,
    simulate_chimera,
    simulate_dapple,
    simulate_gp_stream,
    simulate_gp_then_bp,
    simulate_gpipe,
)

__all__ = [
    "StageTimes",
    "model_stage_times",
    "pipeline_speedup",
    "PipelineConfig",
    "PipelineKind",
    "batch_makespan",
    "gp_batch_increment",
    "gp_drain",
    "sequence_makespan",
    "training_phase_sequence",
    "Task",
    "Timeline",
    "simulate_chimera",
    "simulate_dapple",
    "simulate_gp_stream",
    "simulate_gp_then_bp",
    "simulate_gpipe",
]
