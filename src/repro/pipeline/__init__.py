"""Multi-device pipeline schedules (GPipe/DAPPLE/Chimera) + ADA-GP overlays.

Two complementary halves: :mod:`.schedules`/:mod:`.simulator`/:mod:`.adagp`
model the paper's step grids analytically, while :mod:`.partition` and
:mod:`.executor` *execute* stage-partitioned NumPy models under the same
schedules with measured per-stage device clocks (Fig 20 as measurement).
"""

from .adagp import StageTimes, model_stage_times, pipeline_speedup
from .executor import BatchRun, PipelineExecutor, validate_dependencies
from .partition import (
    StagePlan,
    balanced_boundaries,
    partition_sequential,
    probe_layer_costs,
)
from .schedules import (
    PipelineConfig,
    PipelineKind,
    batch_makespan,
    gp_batch_increment,
    gp_drain,
    sequence_makespan,
    training_phase_sequence,
)
from .simulator import (
    Task,
    Timeline,
    render_timeline,
    simulate_chimera,
    simulate_dapple,
    simulate_gp_stream,
    simulate_gp_then_bp,
    simulate_gpipe,
)

__all__ = [
    "BatchRun",
    "PipelineExecutor",
    "StagePlan",
    "balanced_boundaries",
    "partition_sequential",
    "probe_layer_costs",
    "validate_dependencies",
    "StageTimes",
    "model_stage_times",
    "pipeline_speedup",
    "PipelineConfig",
    "PipelineKind",
    "batch_makespan",
    "gp_batch_increment",
    "gp_drain",
    "sequence_makespan",
    "training_phase_sequence",
    "Task",
    "Timeline",
    "render_timeline",
    "simulate_chimera",
    "simulate_dapple",
    "simulate_gp_stream",
    "simulate_gp_then_bp",
    "simulate_gpipe",
]
