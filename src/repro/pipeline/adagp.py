"""ADA-GP speedups over multi-device pipeline baselines (Fig 20, §6.5).

Per-model forward/backward stage times come from the accelerator cycle
model (total FW / BW cycles split evenly over the devices — the paper's
balanced-partition assumption), and predictor overhead (alpha) per
device is folded into the ADA-GP stage times exactly as in the
single-chip analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel.adagp import AcceleratorModel
from ..accel.config import AdaGPDesign
from ..accel.dataflow import layer_backward_cycles, layer_forward_cycles
from ..accel.predictor_cost import predictor_layer_cost, predictor_load_cycles
from ..accel.predictor_cost import gradient_row_of
from ..core.schedule import HeuristicSchedule
from ..models.specs import ModelSpec
from .schedules import (
    PipelineConfig,
    PipelineKind,
    batch_makespan,
    sequence_makespan,
    training_phase_sequence,
)


@dataclass(frozen=True)
class StageTimes:
    """Per-device, per-micro-batch stage durations (in cycles)."""

    tf: float
    tb: float
    alpha_fw: float
    alpha_bw: float


def model_stage_times(
    model: ModelSpec,
    accelerator: AcceleratorModel,
    config: PipelineConfig,
    design: AdaGPDesign,
    batch: int = 32,
) -> StageTimes:
    """Split a model's per-batch work evenly across pipeline devices.

    Micro-batches divide the batch: each device runs 1/S of the layers
    on 1/M of the samples per slot.
    """
    micro_batch = max(batch // config.micro_batches, 1)
    fw = bw = a_fw = a_bw = 0.0
    for spec in model.layers:
        fw += layer_forward_cycles(spec, micro_batch, accelerator.config)
        bw += layer_backward_cycles(spec, micro_batch, accelerator.config)
        if spec.is_predictable:
            pcost = predictor_layer_cost(
                spec,
                accelerator.config,
                accelerator.predictor_hw,
                on_chip_weights=design != AdaGPDesign.LOW,
            )
            load = 0
            if design == AdaGPDesign.LOW:
                load = predictor_load_cycles(
                    gradient_row_of(spec),
                    accelerator.config,
                    accelerator.predictor_hw,
                )
            a_fw += pcost.alpha_fw + load
            a_bw += pcost.alpha_bw + load
    stages = config.num_stages
    return StageTimes(
        tf=fw / stages, tb=bw / stages, alpha_fw=a_fw / stages, alpha_bw=a_bw / stages
    )


def pipeline_speedup(
    model: ModelSpec,
    kind: PipelineKind,
    design: AdaGPDesign,
    accelerator: AcceleratorModel | None = None,
    config: PipelineConfig | None = None,
    schedule: HeuristicSchedule | None = None,
    epochs: int = 90,
    batches_per_epoch: int = 20,
    batch: int = 32,
) -> float:
    """End-to-end training speedup of ADA-GP over a pipeline baseline."""
    accelerator = accelerator or AcceleratorModel()
    config = config or PipelineConfig()
    schedule = schedule or HeuristicSchedule()
    times = model_stage_times(model, accelerator, config, design, batch)
    phases = training_phase_sequence(schedule, epochs, batches_per_epoch)

    baseline = batch_makespan(kind, config, times.tf, times.tb) * len(phases)
    if design == AdaGPDesign.MAX:
        # Dedicated predictor array: alpha overlaps the next micro-batch
        # slot; only non-hideable spill (alpha exceeding a slot) remains.
        tf_bp = times.tf + max(0.0, times.alpha_fw - times.tf)
        tb_bp = times.tb + max(0.0, times.alpha_bw - times.tb)
        tf_gp = times.tf + max(0.0, times.alpha_fw - times.tf)
    else:
        tf_bp = times.tf + times.alpha_fw
        tb_bp = times.tb + times.alpha_bw
        tf_gp = times.tf + times.alpha_fw
    ada = sequence_makespan(kind, config, phases, tf_bp, tb_bp, tf_gp=tf_gp)
    return baseline / ada
