"""Pipeline-parallel schedule models: GPipe, DAPPLE, Chimera (§3.8, §6.5).

The paper analyses multi-device execution in abstract *steps*: with
``S`` pipeline stages (one per device), ``M`` micro-batches per batch,
forward time ``tf`` and backward time ``tb`` per micro-batch per stage.
For the canonical configuration (S=M=4, tb=2*tf) the paper quotes:

* GPipe:   21 steps per batch   (validated by :mod:`.simulator`)
* DAPPLE:  21 steps per batch   (same critical path as GPipe)
* Chimera: 16 steps per batch   (bidirectional pipelines)

and for ADA-GP's Phase-GP streams / phase transitions:

* a Phase-GP batch adds only ``M*tf`` to the critical path,
* a GP batch followed by a BP batch completes in ``M*tf + makespan``
  (25 steps on GPipe/DAPPLE, 20 on Chimera — Figs 10c/11c/12c).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from ..core.schedule import HeuristicSchedule, Phase


class PipelineKind(str, Enum):
    GPIPE = "GPipe"
    DAPPLE = "DAPPLE"
    CHIMERA = "Chimera"


@dataclass(frozen=True)
class PipelineConfig:
    """Devices and micro-batching of the multi-device setup (§6.5)."""

    num_stages: int = 4
    micro_batches: int = 4

    def __post_init__(self) -> None:
        if self.num_stages < 2:
            raise ValueError("need at least 2 pipeline stages")
        if self.micro_batches < 1:
            raise ValueError("need at least 1 micro-batch")


def batch_makespan(
    kind: PipelineKind, config: PipelineConfig, tf: float, tb: float
) -> float:
    """Steps to train ONE batch with synchronous flush (baseline BP)."""
    if tf <= 0 or tb <= 0:
        raise ValueError("tf and tb must be positive")
    stages, micro = config.num_stages, config.micro_batches
    if kind in (PipelineKind.GPIPE, PipelineKind.DAPPLE):
        # Classic synchronous-pipeline critical path; DAPPLE's 1F1B
        # reordering reduces memory, not the critical path.
        return (stages + micro - 1) * (tf + tb)
    if kind == PipelineKind.CHIMERA:
        if stages % 2 != 0 or micro % 2 != 0:
            raise ValueError("Chimera needs even stages and micro-batches")
        busy = micro * (tf + tb)  # each device hosts both directions
        bubble = (stages // 2 - 1) * (tf + tb) + tf
        return busy + bubble
    raise ValueError(f"unknown pipeline kind {kind}")


def gp_batch_increment(config: PipelineConfig, tf: float) -> float:
    """Critical-path contribution of one Phase-GP batch in a stream.

    With backprop eliminated, consecutive batches stream through the
    pipeline with no flush: each batch occupies every device for exactly
    ``M`` forward slots (Figs 10b/11b/12b show the gap-free grids).
    """
    return config.micro_batches * tf


def gp_drain(config: PipelineConfig, tf: float) -> float:
    """Pipeline drain paid when a GP stream ends the training sequence."""
    return (config.num_stages - 1) * tf


def sequence_makespan(
    kind: PipelineKind,
    config: PipelineConfig,
    phases: Sequence[Phase],
    tf: float,
    tb: float,
    tf_gp: float | None = None,
) -> float:
    """Critical path of a phase-labelled batch sequence.

    ``tf``/``tb`` apply to BP (and warm-up) batches — callers fold any
    predictor overhead (alpha) in; ``tf_gp`` (default ``tf``) applies to
    GP batches.  A GP batch followed by a BP batch overlaps its drain
    with the BP fill (paper: 25 steps for the GPipe pair), hence the
    drain is only charged when the sequence *ends* in GP.
    """
    tf_gp = tf if tf_gp is None else tf_gp
    total = 0.0
    for phase in phases:
        if phase == Phase.GP:
            total += gp_batch_increment(config, tf_gp)
        else:
            total += batch_makespan(kind, config, tf, tb)
    if phases and phases[-1] == Phase.GP:
        total += gp_drain(config, tf_gp)
    return total


def training_phase_sequence(
    schedule: HeuristicSchedule, epochs: int, batches_per_epoch: int
) -> list[Phase]:
    """Flat phase labels for every batch of a training run."""
    return [
        schedule.phase_for(epoch, batch)
        for epoch in range(epochs)
        for batch in range(batches_per_epoch)
    ]
