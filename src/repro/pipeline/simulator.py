"""Discrete step-grid simulator for pipeline schedules.

The closed forms in :mod:`.schedules` are validated against this
simulator: it builds the actual task grid (device x time) for each
schedule, enforcing micro-batch dependencies and device exclusivity,
and reports the makespan.  Tests assert the paper's quoted step counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .schedules import PipelineConfig, PipelineKind


@dataclass(frozen=True)
class Task:
    """One forward or backward slot of a micro-batch on a device."""

    device: int
    start: float
    end: float
    kind: str  # "fw" | "bw"
    micro_batch: int
    stage: int
    pipeline: str = "down"  # Chimera runs a second, "up", pipeline
    batch: int = 0


@dataclass
class Timeline:
    """A completed schedule with validity checks."""

    tasks: list[Task] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        if not self.tasks:
            return 0.0
        return max(task.end for task in self.tasks)

    def device_tasks(self, device: int) -> list[Task]:
        return sorted(
            (t for t in self.tasks if t.device == device), key=lambda t: t.start
        )

    def validate(self) -> None:
        """Raise if any device runs two tasks at once."""
        for device in {t.device for t in self.tasks}:
            ordered = self.device_tasks(device)
            for prev, cur in zip(ordered, ordered[1:]):
                if cur.start < prev.end - 1e-9:
                    raise AssertionError(
                        f"device {device} overlap: {prev} vs {cur}"
                    )

    @classmethod
    def from_spans(cls, spans) -> "Timeline":
        """Rebuild a timeline from executor trace spans.

        The executor records each ``pipe.fw`` / ``pipe.bw`` slot as a
        span whose times are the *virtual device clock* (``track`` is
        the stage), so a timeline reconstructed from a trace renders
        identically to the one the executor built live — the invariant
        ``tests/obs`` pins.  Accepts ``repro.obs`` ``Span`` objects or
        their ``to_dict`` rows; non-``pipe.*`` spans are ignored.
        """
        tasks = []
        for span in spans:
            row = span if isinstance(span, dict) else span.to_dict()
            name = row.get("name", "")
            if not name.startswith("pipe."):
                continue
            args = row.get("args", {})
            stage = row.get("track", 0)
            tasks.append(
                Task(
                    device=stage,
                    start=row["start"],
                    end=row["end"],
                    kind=name.split(".", 1)[1],
                    micro_batch=args.get("micro", 0),
                    stage=stage,
                    batch=args.get("batch", 0),
                )
            )
        tasks.sort(key=lambda task: (task.start, task.device))
        return cls(tasks)


def render_timeline(
    timeline: Timeline,
    num_devices: int,
    width: Optional[int] = None,
    label_by: str = "micro_batch",
) -> str:
    """ASCII step grid of a timeline: one row per device.

    Forward slots are digits, backward slots letters, both labelled by
    ``label_by`` (``"micro_batch"`` for single-batch simulator grids,
    ``"batch"`` for measured multi-batch runs).  ``width`` defaults to
    one cell per time step (integer-step simulator timelines); measured
    timelines have sub-second spans, so pass an explicit width to get a
    readable scaled grid.
    """
    span = timeline.makespan
    if span <= 0:
        return "(empty timeline)"
    if width is None:
        width = max(int(round(span)), 1)
    scale = width / span
    rows = []
    for device in range(num_devices):
        cells = ["."] * width
        for task in timeline.device_tasks(device):
            index = getattr(task, label_by) % 10
            label = str(index) if task.kind == "fw" else chr(ord("a") + index)
            lo = int(task.start * scale)
            hi = min(max(int(task.end * scale), lo + 1), width)
            for cell in range(lo, hi):
                cells[cell] = label
        rows.append(f"  device{device}: " + "".join(cells))
    return "\n".join(rows)


def simulate_gpipe(
    config: PipelineConfig,
    tf: float = 1.0,
    tb: float = 2.0,
    batch: int = 0,
    device_free: Optional[list[float]] = None,
) -> Timeline:
    """GPipe: all forwards, flush, all backwards (paper Fig 10a)."""
    stages, micro = config.num_stages, config.micro_batches
    offsets = list(device_free) if device_free is not None else [0.0] * stages
    timeline = Timeline()
    fw_end = [[0.0] * micro for _ in range(stages)]
    for s in range(stages):
        for m in range(micro):
            ready = fw_end[s - 1][m] if s > 0 else 0.0
            free = fw_end[s][m - 1] if m > 0 else offsets[s]
            start = max(ready, free)
            fw_end[s][m] = start + tf
            timeline.tasks.append(
                Task(s, start, start + tf, "fw", m, s, batch=batch)
            )
    bw_end = [[0.0] * micro for _ in range(stages)]
    for s in reversed(range(stages)):
        for m in range(micro):
            ready = bw_end[s + 1][m] if s < stages - 1 else fw_end[s][micro - 1]
            free = bw_end[s][m - 1] if m > 0 else fw_end[s][micro - 1]
            start = max(ready, free)
            bw_end[s][m] = start + tb
            timeline.tasks.append(
                Task(s, start, start + tb, "bw", m, s, batch=batch)
            )
    timeline.validate()
    return timeline


def simulate_dapple(
    config: PipelineConfig,
    tf: float = 1.0,
    tb: float = 2.0,
    batch: int = 0,
    device_free: Optional[list[float]] = None,
) -> Timeline:
    """DAPPLE / 1F1B: early backward scheduling (paper Fig 11a).

    Same critical path as GPipe for one batch; the op order per device
    differs (warm-up forwards, then alternating BW/FW).
    """
    stages, micro = config.num_stages, config.micro_batches
    op_lists: list[list[tuple[str, int]]] = []
    for s in range(stages):
        warmup = min(stages - s, micro)
        ops: list[tuple[str, int]] = [("fw", m) for m in range(warmup)]
        next_fw = warmup
        next_bw = 0
        while next_bw < micro:
            ops.append(("bw", next_bw))
            next_bw += 1
            if next_fw < micro:
                ops.append(("fw", next_fw))
                next_fw += 1
        op_lists.append(ops)
    return _run_op_lists(
        op_lists,
        config,
        tf,
        tb,
        device_of_stage=lambda s: s,
        batch=batch,
        device_free=device_free,
    )


def simulate_chimera(
    config: PipelineConfig,
    tf: float = 1.0,
    tb: float = 2.0,
    batch: int = 0,
    device_free: Optional[list[float]] = None,
) -> Timeline:
    """Chimera: two half-size pipelines in opposite directions (Fig 12a).

    The down pipeline maps stage s to device s; the up pipeline maps
    stage s to device S-1-s.  Each direction carries M/2 micro-batches
    with 1F1B ordering; a device interleaves the two directions' ops,
    bw-first, which fills the bubbles and yields the paper's 16 steps
    for S=M=4, tb=2*tf.
    """
    stages, micro = config.num_stages, config.micro_batches
    if stages % 2 or micro % 2:
        raise ValueError("Chimera needs even stages and micro-batches")
    half = micro // 2
    # Tasks: (pipeline, kind, stage, micro) with 1F1B order per pipeline.
    # Dependencies are the usual chains within each pipeline.
    done: dict[tuple[str, str, int, int], float] = {}
    device_free = list(device_free) if device_free is not None else [0.0] * stages
    timeline = Timeline()

    def device_of(pipeline: str, stage: int) -> int:
        return stage if pipeline == "down" else stages - 1 - stage

    def ready_time(pipeline: str, kind: str, stage: int, m: int) -> Optional[float]:
        if kind == "fw":
            if stage == 0:
                return 0.0
            return done.get((pipeline, "fw", stage - 1, m))
        if stage == stages - 1:
            return done.get((pipeline, "fw", stage, m))
        return done.get((pipeline, "bw", stage + 1, m))

    pending: list[tuple[str, str, int, int]] = [
        (pipe, kind, s, m)
        for pipe in ("down", "up")
        for kind in ("fw", "bw")
        for s in range(stages)
        for m in range(half)
    ]
    # Greedy list scheduling: repeatedly run the ready task whose start
    # would be earliest; ties prefer backward work (Chimera's rule) and
    # lower micro-batch index, which reproduces the published schedule.
    while pending:
        best = None
        for item in pending:
            pipe, kind, stage, m = item
            ready = ready_time(pipe, kind, stage, m)
            if ready is None:
                continue
            device = device_of(pipe, stage)
            start = max(ready, device_free[device])
            key = (start, 0 if kind == "bw" else 1, m, pipe)
            if best is None or key < best[0]:
                best = (key, item, start, device)
        if best is None:
            raise RuntimeError("Chimera schedule deadlocked")
        _key, item, start, device = best
        pipe, kind, stage, m = item
        duration = tf if kind == "fw" else tb
        done[item] = start + duration
        device_free[device] = start + duration
        timeline.tasks.append(
            Task(device, start, start + duration, kind, m, stage, pipe, batch)
        )
        pending.remove(item)
    timeline.validate()
    return timeline


def simulate_gp_stream(
    config: PipelineConfig, num_batches: int, tf: float = 1.0
) -> Timeline:
    """Phase GP: forward-only batches streaming with no flush (Fig 10b)."""
    stages, micro = config.num_stages, config.micro_batches
    timeline = Timeline()
    fw_end: dict[tuple[int, int], float] = {}  # (stage, global micro index)
    total_micro = num_batches * micro
    for s in range(stages):
        for g in range(total_micro):
            ready = fw_end[(s - 1, g)] if s > 0 else 0.0
            free = fw_end[(s, g - 1)] if g > 0 else 0.0
            start = max(ready, free)
            fw_end[(s, g)] = start + tf
            timeline.tasks.append(
                Task(s, start, start + tf, "fw", g % micro, s, batch=g // micro)
            )
    timeline.validate()
    return timeline


def simulate_gp_then_bp(
    kind: PipelineKind, config: PipelineConfig, tf: float = 1.0, tb: float = 2.0
) -> Timeline:
    """One GP batch then one BP batch (the Fig 10c/11c/12c transitions).

    The BP batch is scheduled with each device becoming available only
    once the GP stream frees it, so the BP fill overlaps the GP drain.
    For GPipe/DAPPLE/Chimera at S=M=4, tb=2tf this lands at 25/25/20
    steps — the paper's transition costs.
    """
    stages, micro = config.num_stages, config.micro_batches
    gp = simulate_gp_stream(config, 1, tf)
    if kind == PipelineKind.GPIPE:
        gp_free = [
            max(t.end for t in gp.device_tasks(d)) for d in range(stages)
        ]
        bp = simulate_gpipe(config, tf, tb, batch=1, device_free=gp_free)
    elif kind == PipelineKind.DAPPLE:
        gp_free = [
            max(t.end for t in gp.device_tasks(d)) for d in range(stages)
        ]
        bp = simulate_dapple(config, tf, tb, batch=1, device_free=gp_free)
    else:
        # Chimera streams GP batches bidirectionally (Fig 12b), so in
        # steady state every device runs M forward slots per batch and
        # frees at M*tf simultaneously; the merged timeline below keeps
        # the (unidirectional) GP tasks for illustration only and the
        # makespan is governed by the BP batch.
        gp_free = [float(micro * tf)] * stages
        bp = simulate_chimera(config, tf, tb, batch=1, device_free=gp_free)
        merged = Timeline(tasks=list(bp.tasks))
        merged.validate()
        return merged
    merged = Timeline(tasks=list(gp.tasks) + list(bp.tasks))
    merged.validate()
    return merged


def _run_op_lists(
    op_lists: list[list[tuple[str, int]]],
    config: PipelineConfig,
    tf: float,
    tb: float,
    device_of_stage,
    batch: int = 0,
    device_free: Optional[list[float]] = None,
) -> Timeline:
    """Execute fixed per-device op lists under dependency constraints."""
    stages, micro = config.num_stages, config.micro_batches
    done: dict[tuple[str, int, int], float] = {}
    position = [0] * stages
    device_free = list(device_free) if device_free is not None else [0.0] * stages
    timeline = Timeline()
    remaining = sum(len(ops) for ops in op_lists)
    while remaining:
        progressed = False
        for s in range(stages):
            while position[s] < len(op_lists[s]):
                kind, m = op_lists[s][position[s]]
                if kind == "fw":
                    ready = done.get(("fw", s - 1, m), 0.0) if s > 0 else 0.0
                    if s > 0 and ("fw", s - 1, m) not in done:
                        break
                else:
                    if s == stages - 1:
                        dep = ("fw", s, m)
                    else:
                        dep = ("bw", s + 1, m)
                    if dep not in done:
                        break
                    ready = done[dep]
                device = device_of_stage(s)
                start = max(ready, device_free[device])
                duration = tf if kind == "fw" else tb
                done[(kind, s, m)] = start + duration
                device_free[device] = start + duration
                timeline.tasks.append(
                    Task(device, start, start + duration, kind, m, s, batch=batch)
                )
                position[s] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            raise RuntimeError("op-list schedule deadlocked")
    timeline.validate()
    return timeline
