"""Event-driven micro-batch executor for real NumPy pipeline stages.

Where :mod:`.simulator` *models* GPipe/DAPPLE schedules with abstract
``tf``/``tb`` step costs, this module *executes* them: the model is split
into stage sub-models (:mod:`.partition`), each stage owns a virtual
device clock, and every forward/backward micro-batch slot runs real
NumPy compute whose duration is measured with ``perf_counter``.  A slot
is placed on its device at ``max(dependency ready time, device free
time)`` — so the resulting :class:`~repro.pipeline.simulator.Timeline`
is a *measurement* of the schedule (Fig 20 as measurement, not
simulation), while :meth:`Timeline.validate` and
:func:`validate_dependencies` keep the ordering honest against the
simulator's dependency rules.

Semantics notes:

* Stages execute sequentially in one process; the parallelism lives in
  the virtual clocks, which is exactly what the makespan measurement
  needs (real durations, schedule-accurate placement).
* BP batches scale each micro-batch's loss gradient by
  ``micro/batch``, so accumulated parameter gradients equal one
  full-batch backward for mean-reduction losses.  (BatchNorm batch
  statistics are still per-micro-batch — inherent to micro-batched
  pipelines.)
* Because layer caches are single-slot, the executor snapshots each
  stage's private state after a forward and restores it before the
  matching backward, letting GPipe run all forwards before any backward
  without activation recomputation.
* Device clocks persist across batches, so a Phase-GP batch's
  forward-only micro-batches stream into the bubbles left by adjacent
  batches — the §3.7 overlap the analytical model charges as ``M*tf``
  per GP batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..accel.config import AcceleratorConfig
from ..nn.backend import BackendSpec, backend_scope, resolve_backend
from ..nn.layers.core import Sequential
from ..nn.losses import loss_value
from ..nn.module import Module, Parameter
from ..obs.trace import BP, GP, current_phase, tracer as _obs_tracer
from .partition import StagePlan, partition_sequential
from .schedules import PipelineConfig, PipelineKind
from .simulator import Task, Timeline

LossFn = Callable[[np.ndarray, np.ndarray], tuple[float, np.ndarray]]


def validate_dependencies(timeline: Timeline) -> None:
    """Raise if any task starts before its pipeline dependencies finish.

    Checks the simulator's dependency rules on a measured timeline:
    ``fw(s, m)`` after ``fw(s-1, m)``; ``bw(s, m)`` after ``bw(s+1, m)``
    (after ``fw(s, m)`` at the last stage) — per batch.
    """
    if not timeline.tasks:
        return
    last_stage = max(task.stage for task in timeline.tasks)
    done: dict[tuple[int, str, int, int], float] = {}
    for task in timeline.tasks:
        done[(task.batch, task.kind, task.stage, task.micro_batch)] = task.end
    eps = 1e-9
    for task in timeline.tasks:
        key = (task.batch, task.kind, task.stage, task.micro_batch)
        if task.kind == "fw":
            if task.stage == 0:
                continue
            dep = (task.batch, "fw", task.stage - 1, task.micro_batch)
        elif task.stage == last_stage:
            dep = (task.batch, "fw", task.stage, task.micro_batch)
        else:
            dep = (task.batch, "bw", task.stage + 1, task.micro_batch)
        if dep not in done:
            raise AssertionError(f"task {key} has no completed dependency {dep}")
        if task.start < done[dep] - eps:
            raise AssertionError(
                f"task {key} starts at {task.start} before dependency "
                f"{dep} ends at {done[dep]}"
            )


@dataclass
class BatchRun:
    """Outcome of one executed batch on the pipeline."""

    kind: str  # "bp" | "gp"
    loss: float
    tasks: list[Task] = field(default_factory=list)

    @property
    def compute_time(self) -> float:
        """Sum of measured slot durations — the single-device cost."""
        return sum(task.end - task.start for task in self.tasks)

    @property
    def start(self) -> float:
        return min(task.start for task in self.tasks)

    @property
    def end(self) -> float:
        return max(task.end for task in self.tasks)


class PipelineExecutor:
    """Runs training batches on stage-partitioned models with measured
    per-stage virtual device clocks (GPipe or DAPPLE task ordering)."""

    def __init__(
        self,
        stages: Sequence[Sequential],
        micro_batches: int = 4,
        kind: PipelineKind = PipelineKind.GPIPE,
        plan: Optional[StagePlan] = None,
        backend: Optional[BackendSpec] = None,
    ) -> None:
        if kind == PipelineKind.CHIMERA:
            raise ValueError(
                "the executor runs GPipe/DAPPLE orderings; Chimera's "
                "bidirectional mapping needs two model replicas per device"
            )
        self.stages = list(stages)
        # Backend every stage slot computes under.  ``None`` inherits the
        # caller's scope — which is how stages inherit the engine's
        # backend when driven by PipelineGPStrategy; an explicit backend
        # pins standalone (benchmark) runs.
        self.backend = resolve_backend(backend)
        self.config = PipelineConfig(
            num_stages=len(self.stages), micro_batches=micro_batches
        )
        self.kind = kind
        self.plan = plan
        self.timeline = Timeline()
        self.device_free = [0.0] * len(self.stages)
        self.batches_run = 0
        # Micro-batch index currently in flight; forward hooks installed
        # by strategies read this to gate per-micro-batch work.
        self.current_micro: Optional[int] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_model(
        cls,
        model: Sequential,
        num_stages: int,
        input_shape: Sequence[int],
        micro_batches: int = 4,
        kind: PipelineKind = PipelineKind.GPIPE,
        batch: int = 1,
        accel_config: Optional[AcceleratorConfig] = None,
        backend: Optional[BackendSpec] = None,
    ) -> "PipelineExecutor":
        """Partition ``model`` (accel cost model) and build an executor."""
        stages, plan = partition_sequential(
            model, num_stages, input_shape, batch=batch, config=accel_config
        )
        return cls(
            stages, micro_batches=micro_batches, kind=kind, plan=plan, backend=backend
        )

    # ------------------------------------------------------------------
    def reset_clock(self) -> None:
        """Forget all measured tasks and device clocks."""
        self.timeline = Timeline()
        self.device_free = [0.0] * len(self.stages)
        self.batches_run = 0

    @property
    def makespan(self) -> float:
        return self.timeline.makespan

    def validate(self) -> None:
        """Device exclusivity + dependency ordering of the whole run."""
        self.timeline.validate()
        validate_dependencies(self.timeline)

    # ------------------------------------------------------------------
    # Per-micro-batch stage state (layer caches are single-slot).
    # ------------------------------------------------------------------
    @staticmethod
    def _snapshot(stage: Sequential) -> list[tuple[Module, dict]]:
        snap = []
        for module in stage.modules():
            saved = {
                key: value
                for key, value in module.__dict__.items()
                if key.startswith("_")
                and not isinstance(value, (Parameter, Module))
            }
            if saved:
                snap.append((module, saved))
        return snap

    @staticmethod
    def _restore(snap: list[tuple[Module, dict]]) -> None:
        for module, saved in snap:
            module.__dict__.update(saved)

    # ------------------------------------------------------------------
    def _split(self, array: np.ndarray) -> list[np.ndarray]:
        micro = self.config.micro_batches
        if array.shape[0] < micro:
            raise ValueError(
                f"batch of {array.shape[0]} cannot fill {micro} micro-batches"
            )
        return np.array_split(array, micro, axis=0)

    def _op_lists(self, backward: bool) -> list[list[tuple[str, int]]]:
        stages, micro = self.config.num_stages, self.config.micro_batches
        if not backward:
            return [[("fw", m) for m in range(micro)] for _ in range(stages)]
        if self.kind == PipelineKind.GPIPE:
            return [
                [("fw", m) for m in range(micro)]
                + [("bw", m) for m in range(micro)]
                for _ in range(stages)
            ]
        # DAPPLE / 1F1B: warm-up forwards, then alternate BW/FW.
        op_lists: list[list[tuple[str, int]]] = []
        for s in range(stages):
            warmup = min(stages - s, micro)
            ops: list[tuple[str, int]] = [("fw", m) for m in range(warmup)]
            next_fw, next_bw = warmup, 0
            while next_bw < micro:
                ops.append(("bw", next_bw))
                next_bw += 1
                if next_fw < micro:
                    ops.append(("fw", next_fw))
                    next_fw += 1
            op_lists.append(ops)
        return op_lists

    # ------------------------------------------------------------------
    def _run_ops(
        self,
        op_lists: list[list[tuple[str, int]]],
        micro_inputs: list[np.ndarray],
        micro_targets: Optional[list[np.ndarray]],
        loss_fn: Optional[LossFn],
        backward: bool,
    ) -> BatchRun:
        """Execute per-stage op lists under data dependencies, measuring
        each slot and placing it on the virtual device clocks."""
        with backend_scope(self.backend):
            return self._run_ops_inner(
                op_lists, micro_inputs, micro_targets, loss_fn, backward
            )

    def _run_ops_inner(
        self,
        op_lists: list[list[tuple[str, int]]],
        micro_inputs: list[np.ndarray],
        micro_targets: Optional[list[np.ndarray]],
        loss_fn: Optional[LossFn],
        backward: bool,
    ) -> BatchRun:
        stages = self.config.num_stages
        last = stages - 1
        total = sum(x.shape[0] for x in micro_inputs)
        acts: dict[tuple[int, int], np.ndarray] = {}
        grads: dict[tuple[int, int], np.ndarray] = {}
        snaps: dict[tuple[int, int], list] = {}
        fw_end: dict[tuple[int, int], float] = {}
        bw_end: dict[tuple[int, int], float] = {}
        loss_grads: dict[int, np.ndarray] = {}
        losses: dict[int, float] = {}
        tasks: list[Task] = []
        position = [0] * stages
        remaining = sum(len(ops) for ops in op_lists)
        batch_id = self.batches_run
        # Spans carry the *virtual device clock* times (same numbers as
        # the Timeline), so trace and ASCII timeline agree exactly; the
        # phase tag follows the engine's scope, defaulting to bp for
        # backward batches and gp for forward-only streams.
        tracer = _obs_tracer()
        span_phase = current_phase(BP if backward else GP)
        while remaining:
            progressed = False
            for s in range(stages):
                while position[s] < len(op_lists[s]):
                    op, m = op_lists[s][position[s]]
                    if op == "fw":
                        if s > 0 and (s - 1, m) not in acts:
                            break
                        x = micro_inputs[m] if s == 0 else acts[(s - 1, m)]
                        self.current_micro = m
                        t0 = time.perf_counter()
                        out = self.stages[s](x)
                        duration = time.perf_counter() - t0
                        # Loss evaluation stays outside the timed slot: the
                        # schedule models fw/bw work only, and GP batches
                        # compute it purely for monitoring.
                        if s == last and loss_fn is not None and micro_targets is not None:
                            if backward:
                                loss, grad = loss_fn(out, micro_targets[m])
                                losses[m] = float(loss)
                                # Mean-reduction losses: rescale so the sum
                                # of micro-batch gradients equals one
                                # full-batch backward.
                                loss_grads[m] = grad * (x.shape[0] / total)
                            else:
                                # Forward-only stream: value-only loss, no
                                # gradient tensor allocated and discarded.
                                losses[m] = loss_value(
                                    loss_fn, out, micro_targets[m]
                                )
                        acts[(s, m)] = out
                        if backward:
                            snaps[(s, m)] = self._snapshot(self.stages[s])
                        ready = fw_end[(s - 1, m)] if s > 0 else 0.0
                    else:
                        if s == last:
                            if (s, m) not in acts:
                                break
                            ready = fw_end[(s, m)]
                            grad_out = loss_grads[m]
                        else:
                            if (s + 1, m) not in grads:
                                break
                            ready = bw_end[(s + 1, m)]
                            grad_out = grads[(s + 1, m)]
                        self._restore(snaps[(s, m)])
                        t0 = time.perf_counter()
                        grads[(s, m)] = self.stages[s].backward(grad_out)
                        duration = time.perf_counter() - t0
                    start = max(ready, self.device_free[s])
                    end = start + duration
                    self.device_free[s] = end
                    if op == "fw":
                        fw_end[(s, m)] = end
                    else:
                        bw_end[(s, m)] = end
                    task = Task(s, start, end, op, m, s, batch=batch_id)
                    tasks.append(task)
                    self.timeline.tasks.append(task)
                    if tracer.enabled:
                        tracer.record(
                            f"pipe.{op}",
                            span_phase,
                            start,
                            end,
                            track=s,
                            micro=m,
                            batch=batch_id,
                        )
                    position[s] += 1
                    remaining -= 1
                    progressed = True
            if not progressed:
                raise RuntimeError("pipeline op schedule deadlocked")
        self.current_micro = None
        self.batches_run += 1
        if losses:
            loss = float(
                sum(losses[m] * micro_inputs[m].shape[0] for m in losses) / total
            )
        else:
            loss = float("nan")
        return BatchRun(kind="bp" if backward else "gp", loss=loss, tasks=tasks)

    # ------------------------------------------------------------------
    def run_bp_batch(
        self, inputs: np.ndarray, targets: np.ndarray, loss_fn: LossFn
    ) -> BatchRun:
        """One backprop batch under the configured schedule's ordering.

        Parameter gradients accumulate across micro-batches exactly as a
        full-batch backward would; the caller steps the optimizer.
        """
        return self._run_ops(
            self._op_lists(backward=True),
            self._split(inputs),
            self._split(targets),
            loss_fn,
            backward=True,
        )

    def run_gp_batch(
        self,
        inputs: np.ndarray,
        targets: Optional[np.ndarray] = None,
        loss_fn: Optional[LossFn] = None,
    ) -> BatchRun:
        """One Phase-GP batch: forward-only micro-batches streaming with
        no flush.  Predictor work (predict + apply_gradient hooks
        installed by the strategy) runs inside each measured forward
        slot, so the paper's alpha overhead is part of the measurement.
        ``loss_fn`` is for monitoring only."""
        return self._run_ops(
            self._op_lists(backward=False),
            self._split(inputs),
            self._split(targets) if targets is not None else None,
            loss_fn,
            backward=False,
        )
