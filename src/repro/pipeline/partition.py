"""Stage partitioning of ``Sequential`` models for pipeline execution.

The paper's multi-device analysis (§3.7, Fig 20) assumes the model is
split into balanced stages, one per device.  This module produces that
split for *executable* models: every top-level layer of a
:class:`~repro.nn.layers.core.Sequential` is costed on the accelerator
cycle model (the same :func:`~repro.accel.dataflow.layer_forward_cycles`
/ :func:`~repro.accel.dataflow.layer_backward_cycles` used by the
analytical Fig 20), and a dynamic program picks the contiguous split
that minimizes the most expensive stage.

Costing real layers reuses the accel model by *probing*: one forward
pass with hooks records every module's output shape, from which each
``Conv2d``/``Linear`` is mapped to the :class:`~repro.models.specs.LayerSpec`
the cycle model understands; parameter-free layers are costed on the
SIMD post-processing path exactly like the analytical side does.

Stage sub-models share layer objects with the original model, so an
optimizer built over the original model's parameters keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..accel.config import AcceleratorConfig
from ..accel.dataflow import layer_backward_cycles, layer_forward_cycles
from ..models.specs import LayerKind, LayerSpec
from ..nn.layers.core import Conv2d, Linear, Sequential
from ..nn.module import Module


@dataclass(frozen=True)
class StagePlan:
    """A contiguous split of a Sequential's top-level layers into stages."""

    boundaries: tuple[tuple[int, int], ...]  # [start, end) per stage
    layer_costs: tuple[float, ...]  # fw+bw cycles per top-level layer

    @property
    def num_stages(self) -> int:
        return len(self.boundaries)

    @property
    def stage_costs(self) -> tuple[float, ...]:
        return tuple(
            sum(self.layer_costs[start:end]) for start, end in self.boundaries
        )

    @property
    def balance(self) -> float:
        """Mean stage cost over max stage cost (1.0 = perfectly balanced)."""
        costs = self.stage_costs
        peak = max(costs)
        if peak <= 0:
            return 1.0
        return float(np.mean(costs) / peak)


def _spec_for_module(module: Module, output: np.ndarray) -> Optional[LayerSpec]:
    """Map an executed module + its observed output to a costable spec."""
    if isinstance(module, Conv2d) and output.ndim == 4:
        return LayerSpec(
            name=type(module).__name__,
            kind=LayerKind.CONV,
            in_channels=module.in_channels,
            out_channels=module.out_channels,
            kernel_size=module.kernel_size,
            stride=module.stride,
            padding=module.padding,
            out_h=output.shape[2],
            out_w=output.shape[3],
        )
    if isinstance(module, Linear):
        return LayerSpec(
            name=type(module).__name__,
            kind=LayerKind.LINEAR,
            in_channels=module.in_features,
            out_channels=module.out_features,
        )
    if next(module.children(), None) is None:
        # Parameter-free leaf (pool / norm / activation / flatten): SIMD
        # path, one cycle per output element per PE — matches how the
        # analytical model keeps these negligible against GEMM layers.
        if output.ndim == 4:
            channels, out_h, out_w = output.shape[1], output.shape[2], output.shape[3]
        else:
            channels, out_h, out_w = int(np.prod(output.shape[1:])), 1, 1
        return LayerSpec(
            name=type(module).__name__,
            kind=LayerKind.ACT,
            out_channels=channels,
            out_h=out_h,
            out_w=out_w,
        )
    return None  # containers: their leaves are costed individually


def probe_layer_costs(
    model: Sequential,
    input_shape: Sequence[int],
    batch: int = 1,
    config: Optional[AcceleratorConfig] = None,
) -> list[float]:
    """Accel-model cost (fw + bw cycles) of each top-level layer.

    Runs one probe forward (eval mode, so BatchNorm running stats and
    Dropout masks are untouched) with hooks on every sub-module; each
    module's observed output shape feeds the cycle model, and costs roll
    up into the top-level layer that owns the module.
    """
    if not isinstance(model, Sequential):
        raise TypeError(
            f"pipeline partitioning needs a Sequential model, got "
            f"{type(model).__name__}"
        )
    config = config or AcceleratorConfig()
    module_cost: dict[int, float] = {}

    def hook(module: Module, output: np.ndarray) -> None:
        spec = _spec_for_module(module, output)
        if spec is not None:
            module_cost[id(module)] = float(
                layer_forward_cycles(spec, batch, config)
                + layer_backward_cycles(spec, batch, config)
            )

    hooked: list[tuple[Module, Optional[object]]] = []
    for module in model.modules():
        hooked.append((module, module.forward_hook))
        module.forward_hook = hook
    was_training = model.training
    model.eval()
    try:
        probe = np.zeros((batch, *input_shape), dtype=np.float32)
        model(probe)
    finally:
        for module, previous in hooked:
            module.forward_hook = previous
        if was_training:
            model.train()
    costs = []
    for layer in model.layers:
        total = sum(
            module_cost.get(id(module), 0.0) for module in layer.modules()
        )
        costs.append(total)
    return costs


def balanced_boundaries(
    costs: Sequence[float], num_stages: int
) -> tuple[tuple[int, int], ...]:
    """Contiguous split of ``costs`` into ``num_stages`` non-empty parts
    minimizing the maximum part sum (classic linear-partition DP)."""
    n = len(costs)
    if num_stages < 1:
        raise ValueError("need at least one stage")
    if num_stages > n:
        raise ValueError(
            f"cannot split {n} layers into {num_stages} non-empty stages"
        )
    prefix = np.concatenate([[0.0], np.cumsum(costs)])

    def span(i: int, j: int) -> float:
        return float(prefix[j] - prefix[i])

    # best[s][i]: minimal max-stage-cost splitting costs[:i] into s stages.
    inf = float("inf")
    best = [[inf] * (n + 1) for _ in range(num_stages + 1)]
    cut = [[0] * (n + 1) for _ in range(num_stages + 1)]
    best[0][0] = 0.0
    for s in range(1, num_stages + 1):
        for i in range(s, n + 1):
            for j in range(s - 1, i):
                candidate = max(best[s - 1][j], span(j, i))
                if candidate < best[s][i]:
                    best[s][i] = candidate
                    cut[s][i] = j
    boundaries: list[tuple[int, int]] = []
    end = n
    for s in range(num_stages, 0, -1):
        start = cut[s][end]
        boundaries.append((start, end))
        end = start
    boundaries.reverse()
    return tuple(boundaries)


def partition_sequential(
    model: Sequential,
    num_stages: int,
    input_shape: Sequence[int],
    batch: int = 1,
    config: Optional[AcceleratorConfig] = None,
) -> tuple[list[Sequential], StagePlan]:
    """Split ``model`` into ``num_stages`` balanced stage sub-models.

    Returns ``(stages, plan)``; the stages wrap the *same* layer objects
    as ``model``, in order, so running them back-to-back is numerically
    identical to running the original model.
    """
    costs = probe_layer_costs(model, input_shape, batch=batch, config=config)
    boundaries = balanced_boundaries(costs, num_stages)
    stages = [Sequential(*model.layers[a:b]) for a, b in boundaries]
    return stages, StagePlan(boundaries=boundaries, layer_costs=tuple(costs))
