"""Dataset containers and batch iteration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np


@dataclass
class ArrayDataset:
    """A dataset of parallel input/target arrays with batch iteration."""

    inputs: np.ndarray
    targets: np.ndarray

    def __post_init__(self) -> None:
        if len(self.inputs) != len(self.targets):
            raise ValueError(
                f"inputs ({len(self.inputs)}) and targets ({len(self.targets)}) "
                "must have the same length"
            )

    def __len__(self) -> int:
        return len(self.inputs)

    def batches(
        self,
        batch_size: int,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
        drop_last: bool = False,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (inputs, targets) mini-batches."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        order = np.arange(len(self))
        if shuffle:
            rng = rng if rng is not None else np.random.default_rng(0)
            rng.shuffle(order)
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            if drop_last and len(idx) < batch_size:
                return
            yield self.inputs[idx], self.targets[idx]

    def num_batches(self, batch_size: int, drop_last: bool = False) -> int:
        if drop_last:
            return len(self) // batch_size
        return -(-len(self) // batch_size)


@dataclass
class Split:
    """A train/validation pair of datasets."""

    train: ArrayDataset
    val: ArrayDataset
