"""Synthetic object-detection scenes standing in for PascalVOC (§6.4).

Each scene is a 32x32 RGB image containing 1-3 geometric objects
(square / cross / disc — three classes with distinct shapes and color
channels) on a noisy background.  Targets are produced both as YOLO grid
tensors (for training :class:`~repro.models.yolo.MiniYolo`) and as box
lists (for mAP evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

CLASS_NAMES = ["square", "cross", "disc"]


@dataclass
class DetectionDataset:
    """Images plus grid targets and ground-truth box lists."""

    images: np.ndarray  # (count, 3, size, size)
    grid_targets: np.ndarray  # (count, 5 + classes, S, S)
    boxes: list[list[tuple]]  # per image: (class_id, x1, y1, x2, y2) normalized
    grid_size: int
    num_classes: int

    def __len__(self) -> int:
        return len(self.images)

    def batches(self, batch_size: int, shuffle: bool = True, seed: int = 0):
        order = np.arange(len(self))
        if shuffle:
            np.random.default_rng(seed).shuffle(order)
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.images[idx], self.grid_targets[idx]


def _draw_object(
    image: np.ndarray, class_id: int, cx: int, cy: int, half: int
) -> None:
    """Draw one object; each class uses its own channel + shape."""
    size = image.shape[1]
    y0, y1 = max(cy - half, 0), min(cy + half + 1, size)
    x0, x1 = max(cx - half, 0), min(cx + half + 1, size)
    if class_id == 0:  # filled square, red channel
        image[0, y0:y1, x0:x1] += 1.0
    elif class_id == 1:  # cross, green channel
        image[1, y0:y1, cx] += 1.0
        image[1, cy, x0:x1] += 1.0
    else:  # disc, blue channel
        yy, xx = np.ogrid[:size, :size]
        mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= half**2
        image[2][mask] += 1.0


def synthetic_detection(
    num_images: int = 128,
    image_size: int = 32,
    grid_size: int = 4,
    num_classes: int = 3,
    max_objects: int = 2,
    noise: float = 0.15,
    min_half: int = 3,
    max_half: int | None = None,
    seed: int = 0,
) -> DetectionDataset:
    """Generate detection scenes with grid targets and GT boxes.

    Object half-sizes default to 3..image_size//6 pixels: PascalVOC-like
    proportions where an IoU-0.5 match tolerates pixel-level center
    error (tiny objects make mAP@0.5 degenerate at 32x32 resolution).
    """
    if num_classes > len(CLASS_NAMES):
        raise ValueError(f"at most {len(CLASS_NAMES)} classes supported")
    rng = np.random.default_rng(seed)
    cell = image_size // grid_size
    images = np.zeros((num_images, 3, image_size, image_size), dtype=np.float32)
    targets = np.zeros(
        (num_images, 5 + num_classes, grid_size, grid_size), dtype=np.float32
    )
    all_boxes: list[list[tuple]] = []
    for i in range(num_images):
        count = int(rng.integers(1, max_objects + 1))
        boxes: list[tuple] = []
        used_cells: set[tuple[int, int]] = set()
        effective_max_half = (
            max_half if max_half is not None else max(min_half, image_size // 6)
        )
        for _ in range(count):
            class_id = int(rng.integers(0, num_classes))
            half = int(rng.integers(min_half, effective_max_half + 1))
            cx = int(rng.integers(half, image_size - half))
            cy = int(rng.integers(half, image_size - half))
            gx, gy = cx // cell, cy // cell
            if (gx, gy) in used_cells:
                continue  # one object per cell (single-anchor detector)
            used_cells.add((gx, gy))
            _draw_object(images[i], class_id, cx, cy, half)
            w = h = (2 * half + 1) / image_size
            x_in_cell = (cx / cell) - gx
            y_in_cell = (cy / cell) - gy
            targets[i, 0, gy, gx] = 1.0
            targets[i, 1, gy, gx] = x_in_cell
            targets[i, 2, gy, gx] = y_in_cell
            targets[i, 3, gy, gx] = w
            targets[i, 4, gy, gx] = h
            targets[i, 5 + class_id, gy, gx] = 1.0
            norm_cx, norm_cy = cx / image_size, cy / image_size
            boxes.append(
                (
                    class_id,
                    norm_cx - w / 2,
                    norm_cy - h / 2,
                    norm_cx + w / 2,
                    norm_cy + h / 2,
                )
            )
        images[i] += noise * rng.standard_normal(images[i].shape).astype(np.float32)
        all_boxes.append(boxes)
    return DetectionDataset(
        images=images,
        grid_targets=targets,
        boxes=all_boxes,
        grid_size=grid_size,
        num_classes=num_classes,
    )
