"""Synthetic datasets replacing the paper's (offline-unavailable) data."""

from .dataset import ArrayDataset, Split
from .detection import CLASS_NAMES, DetectionDataset, synthetic_detection
from .synthetic import (
    DATASET_PRESETS,
    PAPER_TO_PRESET,
    preset_split,
    synthetic_images,
)
from .translation import (
    BOS_ID,
    EOS_ID,
    PAD_ID,
    TranslationDataset,
    reference_translation,
    synthetic_translation,
)

__all__ = [
    "ArrayDataset",
    "Split",
    "CLASS_NAMES",
    "DetectionDataset",
    "synthetic_detection",
    "DATASET_PRESETS",
    "PAPER_TO_PRESET",
    "preset_split",
    "synthetic_images",
    "BOS_ID",
    "EOS_ID",
    "PAD_ID",
    "TranslationDataset",
    "reference_translation",
    "synthetic_translation",
]
