"""Synthetic translation corpus standing in for Multi30k (paper §6.4).

The "language pair" is a deterministic rule: the target sentence is the
reversed source with every token shifted by a fixed offset in a
disjoint target vocabulary, framed by BOS/EOS.  A seq2seq Transformer
has to learn token mapping + reordering, exercising the same encoder-
decoder training path as a real translation task while remaining
learnable offline at mini scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

PAD_ID = 0
BOS_ID = 1
EOS_ID = 2
NUM_SPECIAL = 3


@dataclass
class TranslationDataset:
    """Parallel corpus of padded id sequences."""

    src: np.ndarray  # (count, src_len) int64, 0-padded
    tgt: np.ndarray  # (count, tgt_len) int64, with BOS/EOS, 0-padded
    src_vocab: int
    tgt_vocab: int

    def __len__(self) -> int:
        return len(self.src)

    def batches(self, batch_size: int, shuffle: bool = True, seed: int = 0):
        order = np.arange(len(self))
        if shuffle:
            np.random.default_rng(seed).shuffle(order)
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.src[idx], self.tgt[idx]


def _translate(sentence: np.ndarray, shift: int, content_vocab: int) -> np.ndarray:
    """Apply the synthetic language rule: reverse + shifted vocabulary."""
    content = sentence[sentence >= NUM_SPECIAL] - NUM_SPECIAL
    mapped = (content + shift) % content_vocab + NUM_SPECIAL
    return mapped[::-1]


def synthetic_translation(
    num_sentences: int = 256,
    content_vocab: int = 20,
    min_len: int = 3,
    max_len: int = 8,
    shift: int = 7,
    seed: int = 0,
) -> TranslationDataset:
    """Generate a parallel corpus under the reverse+shift rule."""
    if max_len < min_len:
        raise ValueError("max_len must be >= min_len")
    rng = np.random.default_rng(seed)
    src_len = max_len
    tgt_len = max_len + 2  # BOS + tokens + EOS
    src = np.zeros((num_sentences, src_len), dtype=np.int64)
    tgt = np.zeros((num_sentences, tgt_len), dtype=np.int64)
    for i in range(num_sentences):
        length = int(rng.integers(min_len, max_len + 1))
        tokens = rng.integers(NUM_SPECIAL, NUM_SPECIAL + content_vocab, size=length)
        translated = _translate(tokens, shift, content_vocab)
        src[i, :length] = tokens
        tgt[i, 0] = BOS_ID
        tgt[i, 1 : 1 + length] = translated
        tgt[i, 1 + length] = EOS_ID
    vocab = NUM_SPECIAL + content_vocab
    return TranslationDataset(src=src, tgt=tgt, src_vocab=vocab, tgt_vocab=vocab)


def reference_translation(src_row: np.ndarray, shift: int, content_vocab: int) -> list[int]:
    """Ground-truth target tokens (no specials) for a padded source row."""
    return list(_translate(src_row[src_row != PAD_ID], shift, content_vocab))
