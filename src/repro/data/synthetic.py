"""Synthetic image-classification datasets.

The paper trains on CIFAR10/CIFAR100/ImageNet, which are unavailable
offline; these generators produce deterministic class-conditional images
(smooth per-class template patterns plus noise and random circular
shifts) that a small CNN can learn, so the BP-vs-ADA-GP accuracy
comparison of Table 1 exercises the identical code path.

The three paper datasets map to presets differing in class count and
image size: ``cifar10-like`` (10 classes), ``cifar100-like`` (100
classes), ``imagenet-like`` (200 classes, larger images).
"""

from __future__ import annotations

import numpy as np

from .dataset import ArrayDataset, Split


def _class_templates(
    num_classes: int, image_size: int, channels: int, rng: np.random.Generator
) -> np.ndarray:
    """Smooth random template per class, built from low-frequency waves."""
    yy, xx = np.meshgrid(
        np.linspace(0, 2 * np.pi, image_size),
        np.linspace(0, 2 * np.pi, image_size),
        indexing="ij",
    )
    templates = np.zeros((num_classes, channels, image_size, image_size), dtype=np.float32)
    for c in range(num_classes):
        for ch in range(channels):
            pattern = np.zeros_like(yy)
            for _ in range(3):
                fy, fx = rng.integers(1, 4, size=2)
                phase_y, phase_x = rng.uniform(0, 2 * np.pi, size=2)
                amp = rng.uniform(0.5, 1.0)
                pattern += amp * np.sin(fy * yy + phase_y) * np.cos(fx * xx + phase_x)
            templates[c, ch] = pattern.astype(np.float32)
    # Normalize template energy so classes are equally hard.
    templates /= np.abs(templates).max(axis=(1, 2, 3), keepdims=True) + 1e-8
    return templates


def synthetic_images(
    num_classes: int,
    num_train: int,
    num_val: int,
    image_size: int = 16,
    channels: int = 3,
    noise: float = 0.4,
    max_shift: int = 2,
    seed: int = 0,
) -> Split:
    """Generate a train/val split of class-conditional images."""
    if num_classes < 2:
        raise ValueError(f"need at least 2 classes, got {num_classes}")
    rng = np.random.default_rng(seed)
    templates = _class_templates(num_classes, image_size, channels, rng)

    def make(count: int) -> ArrayDataset:
        labels = rng.integers(0, num_classes, size=count)
        images = templates[labels].copy()
        if max_shift > 0:
            shifts = rng.integers(-max_shift, max_shift + 1, size=(count, 2))
            for i, (dy, dx) in enumerate(shifts):
                images[i] = np.roll(images[i], (int(dy), int(dx)), axis=(1, 2))
        images += noise * rng.standard_normal(images.shape).astype(np.float32)
        return ArrayDataset(images.astype(np.float32), labels.astype(np.int64))

    return Split(train=make(num_train), val=make(num_val))


# Preset name -> (num_classes, image_size) mirroring the paper's datasets.
DATASET_PRESETS: dict[str, tuple[int, int]] = {
    "cifar10-like": (10, 16),
    "cifar100-like": (100, 16),
    "imagenet-like": (200, 24),
}

PAPER_TO_PRESET: dict[str, str] = {
    "Cifar10": "cifar10-like",
    "Cifar100": "cifar100-like",
    "ImageNet": "imagenet-like",
}


def preset_split(
    preset: str, num_train: int = 512, num_val: int = 256, seed: int = 0
) -> Split:
    """Build a dataset split from a named preset."""
    if preset in PAPER_TO_PRESET:
        preset = PAPER_TO_PRESET[preset]
    if preset not in DATASET_PRESETS:
        raise KeyError(
            f"unknown preset {preset!r}; choose from {sorted(DATASET_PRESETS)} "
            f"or paper names {sorted(PAPER_TO_PRESET)}"
        )
    num_classes, image_size = DATASET_PRESETS[preset]
    return synthetic_images(
        num_classes=num_classes,
        num_train=num_train,
        num_val=num_val,
        image_size=image_size,
        seed=seed,
    )
