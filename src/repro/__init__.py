"""Reproduction of ADA-GP (MICRO 2023): Accelerating DNN Training By
Adaptive Gradient Prediction.

Package map
-----------
``repro.nn``          From-scratch NumPy DNN framework (layers, losses,
                      optimizers, LR schedulers) with per-layer
                      forward/backward — the training substrate.
``repro.models``      Trainable mini model zoo + full-size layer specs
                      of the paper's 15 networks.
``repro.data``        Synthetic classification / translation / detection
                      datasets (offline stand-ins, DESIGN.md §2).
``repro.core``        The paper's contribution: gradient predictor,
                      tensor reorganization, phase schedules, and the
                      unified ``TrainingEngine`` (phase strategies +
                      callbacks) behind the ADA-GP / BP / DNI trainers.
``repro.accel``       Systolic accelerator simulator: cycles under four
                      dataflows, DRAM/SRAM traffic, energy, FPGA/ASIC
                      area & power.
``repro.pipeline``    GPipe / DAPPLE / Chimera pipeline schedules with
                      ADA-GP overlays.
``repro.experiments`` One module per paper table/figure; see
                      ``python -m repro.experiments.runner``.
``repro.tune``        Parallel schedule search over the engine: search
                      spaces, trial runner (process pool + resume
                      journal), successive halving, Pareto frontier of
                      accuracy vs. GP share / cycle-model speedup.
``repro.dist``        Data-parallel training: swappable transports
                      (in-process / multiprocessing), gradient codecs
                      (identity, AdaComp adaptive residual
                      compression), and the ``ddp_engine`` factory —
                      GP phases ship zero gradient bytes.
``repro.obs``         Phase-aware observability: span tracer (JSONL /
                      Chrome trace exporters), metrics registry with
                      cross-rank merge, engine callbacks, sampling
                      per-op backend profiler, ``python -m repro.obs
                      report`` phase×op breakdowns.
"""

from . import accel, core, data, dist, experiments, models, nn, obs, pipeline, tune
from .accel import AcceleratorConfig, AcceleratorModel, AdaGPDesign, DataflowKind
from .core import (
    AdaGPTrainer,
    AdaptiveSchedule,
    BPTrainer,
    DNITrainer,
    GradientPredictor,
    HeuristicSchedule,
    Phase,
    TrainingEngine,
    adagp_engine,
    bp_engine,
    dni_engine,
)
from .dist import ddp_engine
from .models import build_mini, spec_for
from .pipeline import PipelineConfig, PipelineKind, pipeline_speedup

__version__ = "1.0.0"

__all__ = [
    "accel",
    "core",
    "data",
    "dist",
    "experiments",
    "models",
    "nn",
    "obs",
    "pipeline",
    "tune",
    "AcceleratorConfig",
    "AcceleratorModel",
    "AdaGPDesign",
    "DataflowKind",
    "AdaGPTrainer",
    "AdaptiveSchedule",
    "BPTrainer",
    "DNITrainer",
    "GradientPredictor",
    "HeuristicSchedule",
    "Phase",
    "TrainingEngine",
    "bp_engine",
    "adagp_engine",
    "ddp_engine",
    "dni_engine",
    "build_mini",
    "spec_for",
    "PipelineConfig",
    "PipelineKind",
    "pipeline_speedup",
    "__version__",
]
