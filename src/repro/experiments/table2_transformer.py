"""Table 2: Transformer (3 encoder + 3 decoder layers) on translation.

Paper (Multi30k): ADA-GP keeps val accuracy / loss / BLEU essentially at
the baseline while cutting training cycles by ~1.13x.  Reproduced with a
mini seq2seq Transformer on the synthetic reverse+shift corpus; training
cycles come from the full-size Transformer spec on the accelerator
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..accel import AcceleratorModel, AdaGPDesign
from ..core import HeuristicSchedule, adagp_engine, bp_engine
from ..core.metrics import bleu_score
from ..data.translation import (
    BOS_ID,
    EOS_ID,
    PAD_ID,
    TranslationDataset,
    synthetic_translation,
)
from ..models import Seq2SeqTransformer, spec_for
from ..nn.losses import CrossEntropyLoss
from ..nn.optim import Adam, SGD
from .formats import format_table


@dataclass
class Table2Row:
    method: str
    val_accuracy: float
    val_loss: float
    bleu: float
    cycles_e9: float


def _seq_batches(
    dataset: TranslationDataset, batch_size: int, seed: int
) -> Iterator[tuple]:
    """Adapt (src, tgt) pairs to ((src, tgt_in), tgt_out) trainer batches."""
    for src, tgt in dataset.batches(batch_size, shuffle=True, seed=seed):
        yield (src, tgt[:, :-1]), tgt[:, 1:]


def _token_accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    mask = targets != PAD_ID
    predictions = logits.argmax(axis=-1)
    return float((predictions[mask] == targets[mask]).mean() * 100.0)


def _evaluate_bleu(
    model: Seq2SeqTransformer, dataset: TranslationDataset, max_len: int = 12
) -> float:
    decoded = model.greedy_decode(dataset.src, max_len, BOS_ID, EOS_ID)
    candidates = []
    references = []
    for row, ref_row in zip(decoded, dataset.tgt):
        tokens = []
        for token in row[1:]:
            if token in (EOS_ID, PAD_ID):
                break
            tokens.append(int(token))
        candidates.append(tokens)
        ref = [int(t) for t in ref_row if t not in (BOS_ID, EOS_ID, PAD_ID)]
        references.append(ref)
    return bleu_score(candidates, references)


def _training_cycles(use_adagp: bool, epochs: int, batches_per_epoch: int) -> float:
    """Full-size Transformer training cycles (in 1e9) from the accel model."""
    spec = spec_for("Transformer")
    accelerator = AcceleratorModel()
    if use_adagp:
        # Table 2 reports a single ADA-GP number; the 1.13x the paper
        # quotes matches the MAX design on this warm-up-dominated run.
        cost = accelerator.training_cost(
            spec,
            AdaGPDesign.MAX,
            HeuristicSchedule(),
            epochs=epochs,
            batches_per_epoch=batches_per_epoch,
        )
    else:
        cost = accelerator.baseline_training_cost(
            spec, epochs=epochs, batches_per_epoch=batches_per_epoch
        )
    return cost.cycles / 1e9


def run_table2(
    epochs: int = 60,
    adagp_epochs: int = 110,
    num_sentences: int = 768,
    batch_size: int = 32,
    lr: float = 2e-3,
    seed: int = 0,
    cycle_epochs: int = 13,
    cycle_batches_per_epoch: int = 210,
    warmup_epochs: int = 10,
    callbacks: tuple = (),
) -> list[Table2Row]:
    """Train the mini Transformer with BP and with ADA-GP.

    Settings that differ from the CNN experiments, and why:

    * The optimizer is Adam (standard for Transformers; SGD+momentum
      does not train this architecture at mini scale), and predicted
      gradients are applied through an SGD path mirroring the
      accelerator's plain-MAC update unit — Adam's per-element
      normalization would otherwise blow small predicted gradients up
      into full-size noise steps.
    * ADA-GP trains for more epochs (``adagp_epochs``): a mini epoch
      has ~24 batches vs Multi30k's ~900, so skipping backprop on GP
      batches starves the run of Adam steps far more than at paper
      scale; both methods are therefore compared at convergence
      (ADA-GP reaches BP's plateau, see EXPERIMENTS.md).
    * Cycle columns use the full-size spec over a Multi30k-scale run
      (~13 epochs x 210 batches), which lands the baseline near the
      paper's 1245.87e9 cycles; the ADA-GP column uses the MAX design,
      matching the paper's 1.13x — short runs are warm-up dominated,
      which is exactly why the Transformer speedup is below the CNNs'.
    """
    train = synthetic_translation(
        num_sentences=num_sentences, content_vocab=12, max_len=6, seed=seed
    )
    val = synthetic_translation(
        num_sentences=64, content_vocab=12, max_len=6, seed=seed + 100
    )
    rows = []
    for use_adagp in (False, True):
        rng = np.random.default_rng(seed + 1)
        model = Seq2SeqTransformer(
            train.src_vocab, train.tgt_vocab, d_model=32, num_heads=2, d_ff=64,
            rng=rng,
        )
        loss = CrossEntropyLoss(ignore_index=PAD_ID)
        optimizer = Adam(model.parameters(), lr=lr)
        if use_adagp:
            engine = adagp_engine(
                model,
                loss,
                optimizer=optimizer,
                gp_optimizer=SGD(model.parameters(), lr=lr, momentum=0.9),
                metric_fn=_token_accuracy,
                plateau_scheduler=False,
                schedule=HeuristicSchedule(
                    warmup_epochs=warmup_epochs,
                    ladder=((4, (4, 1)), (4, (3, 1)), (4, (2, 1))),
                ),
                callbacks=callbacks,
            )
        else:
            engine = bp_engine(
                model,
                loss,
                optimizer=optimizer,
                metric_fn=_token_accuracy,
                plateau_scheduler=False,
                callbacks=callbacks,
            )
        history = engine.fit(
            lambda: _seq_batches(train, batch_size, seed + 2),
            lambda: _seq_batches(val, 64, seed + 3),
            epochs=adagp_epochs if use_adagp else epochs,
        )
        bleu = _evaluate_bleu(model, val)
        rows.append(
            Table2Row(
                method="ADA-GP" if use_adagp else "Baseline(BP)",
                val_accuracy=history.val_metric[-1],
                val_loss=history.val_loss[-1],
                bleu=bleu,
                cycles_e9=_training_cycles(
                    use_adagp, cycle_epochs, cycle_batches_per_epoch
                ),
            )
        )
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    table_rows = [
        [r.method, r.val_accuracy, r.val_loss, r.bleu, r.cycles_e9] for r in rows
    ]
    return format_table(
        ["Method", "Val Acc.", "Loss", "BLEU", "#Cycles(x1e9)"],
        table_rows,
        title="Table 2: Transformer on synthetic translation (Multi30k stand-in)",
    )


def main() -> None:  # pragma: no cover
    print(format_table2(run_table2()))


if __name__ == "__main__":  # pragma: no cover
    main()
