"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table (paper-style rows)."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_series(
    title: str, x_label: str, series: dict[str, list[float]], xs: Sequence[object]
) -> str:
    """Render figure data as one column per series (gnuplot-style)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row: list[object] = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title=title)


def geometric_mean(values: Sequence[float]) -> float:
    import numpy as np

    arr = np.asarray(list(values), dtype=np.float64)
    if len(arr) == 0 or (arr <= 0).any():
        raise ValueError("geometric mean needs positive values")
    return float(np.exp(np.log(arr).mean()))
