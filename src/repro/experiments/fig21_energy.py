"""Fig 21: memory-access energy of baseline-WS vs ADA-GP designs.

Paper: ADA-GP reduces memory-access energy by ~34% on average across the
13 ImageNet models, because Phase-GP batches never re-load weights and
activations from off-chip memory for a backward pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel import AcceleratorModel, AdaGPDesign, training_energy
from ..core import HeuristicSchedule
from ..models import CLASSIFICATION_MODELS, spec_for
from .formats import format_table, geometric_mean


@dataclass
class Fig21Row:
    model: str
    baseline_mj: float  # total memory energy, megajoules
    efficient_mj: float
    max_mj: float

    @property
    def efficient_saving(self) -> float:
        return 1.0 - self.efficient_mj / self.baseline_mj

    @property
    def max_saving(self) -> float:
        return 1.0 - self.max_mj / self.baseline_mj


def run_fig21(
    dataset: str = "ImageNet",
    models: list[str] | None = None,
    epochs: int = 90,
    batches_per_epoch: int = 40000,  # ImageNet: ~1.28M images / batch 32
    batch: int = 32,
) -> list[Fig21Row]:
    models = models or CLASSIFICATION_MODELS
    accelerator = AcceleratorModel()
    schedule = HeuristicSchedule()
    rows = []
    for model_name in models:
        spec = spec_for(model_name, dataset)
        base = training_energy(
            spec, None, accelerator, schedule, epochs, batches_per_epoch, batch
        )
        eff = training_energy(
            spec, AdaGPDesign.EFFICIENT, accelerator, schedule, epochs,
            batches_per_epoch, batch,
        )
        max_ = training_energy(
            spec, AdaGPDesign.MAX, accelerator, schedule, epochs,
            batches_per_epoch, batch,
        )
        rows.append(
            Fig21Row(
                model=model_name,
                baseline_mj=base.total_joules / 1e6,
                efficient_mj=eff.total_joules / 1e6,
                max_mj=max_.total_joules / 1e6,
            )
        )
    return rows


def format_fig21(rows: list[Fig21Row]) -> str:
    table_rows = [
        [
            r.model,
            f"{r.baseline_mj:.3f}",
            f"{r.efficient_mj:.3f}",
            f"{r.max_mj:.3f}",
            f"{r.efficient_saving:.1%}",
        ]
        for r in rows
    ]
    mean_saving = 1.0 - geometric_mean(
        [r.efficient_mj / r.baseline_mj for r in rows]
    )
    table_rows.append(["Geomean saving", "", "", "", f"{mean_saving:.1%}"])
    return format_table(
        ["Model", "Baseline-WS (MJ)", "Efficient (MJ)", "MAX (MJ)", "Saving"],
        table_rows,
        title="Fig 21: memory-access energy over full training (x1e6 J)",
    )


def main() -> None:  # pragma: no cover
    print(format_fig21(run_fig21()))


if __name__ == "__main__":  # pragma: no cover
    main()
