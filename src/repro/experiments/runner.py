"""Run every paper experiment and print its table/figure data.

``python -m repro.experiments.runner`` regenerates everything; pass
``--quick`` to shrink the training-based experiments (Table 1 to a model
subset, fewer epochs) for a fast smoke run.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    fig15_predictor_error,
    fig16_characterization,
    fig17_19_speedup,
    fig20_pipeline,
    fig21_energy,
    table1_accuracy,
    table2_transformer,
    table3_yolo,
    table4_5_hardware,
)
from ..accel import DataflowKind
from ..core import ThroughputTimer
from ..obs.snapshots import format_throughput, throughput_snapshot, total_seconds
from ..pipeline import PipelineKind

QUICK_TABLE1_MODELS = ["ResNet50", "VGG13", "DenseNet121", "MobileNet-V2"]


def run_all(quick: bool = False, stream=sys.stdout) -> None:
    def emit(text: str) -> None:
        print(text, file=stream)
        print(file=stream)

    start = time.time()
    # One timer shared by every training-based experiment: the engine's
    # callback system aggregates measured batches/sec per phase across
    # the whole regeneration run (printed at the end).
    timer = ThroughputTimer()

    # Table 1 (training-based).
    models = QUICK_TABLE1_MODELS if quick else None
    epochs = 12 if quick else 20
    rows = table1_accuracy.run_table1(
        models=models, epochs=epochs, callbacks=(timer,)
    )
    emit(table1_accuracy.format_table1(rows))

    # Fig 15 (training-based).
    result = fig15_predictor_error.run_fig15(
        epochs=12 if quick else 24, callbacks=(timer,)
    )
    emit(fig15_predictor_error.format_fig15(result, "mape"))
    emit(fig15_predictor_error.format_fig15(result, "mse"))

    # Fig 16 (analytical).
    emit(fig16_characterization.format_fig16(fig16_characterization.run_fig16()))

    # Figs 17-19 (analytical).
    for dataflow in (
        DataflowKind.WEIGHT_STATIONARY,
        DataflowKind.ROW_STATIONARY,
        DataflowKind.INPUT_STATIONARY,
    ):
        emit(
            fig17_19_speedup.format_speedups(
                fig17_19_speedup.run_speedups(dataflow)
            )
        )

    # Table 2 (training-based).
    emit(
        table2_transformer.format_table2(
            table2_transformer.run_table2(
                epochs=16 if quick else 30, callbacks=(timer,)
            )
        )
    )

    # Table 3 (training-based).
    emit(
        table3_yolo.format_table3(
            table3_yolo.run_table3(epochs=12 if quick else 25, callbacks=(timer,))
        )
    )

    # Fig 20 (analytical).
    for pipeline in PipelineKind:
        emit(fig20_pipeline.format_fig20(fig20_pipeline.run_fig20(pipeline)))

    # Tables 4 & 5 + equal-resource study (analytical).
    emit(table4_5_hardware.format_table4a())
    emit(table4_5_hardware.format_table4b())
    emit(table4_5_hardware.format_table5a())
    emit(table4_5_hardware.format_table5b())
    emit(
        table4_5_hardware.format_equal_resource(
            table4_5_hardware.run_equal_resource_study()
        )
    )

    # Fig 21 (analytical).
    emit(fig21_energy.format_fig21(fig21_energy.run_fig21()))

    # The same canonical snapshot ThroughputTimer.summary and the
    # BENCH_*.json records format — one aggregation, three reporters.
    snapshot = throughput_snapshot(timer)
    print(f"[{format_throughput(snapshot)}]", file=stream)
    print(
        f"[done in {time.time() - start:.1f}s wall, "
        f"{total_seconds(snapshot):.1f}s in measured training batches]",
        file=stream,
    )


def main() -> None:  # pragma: no cover
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller/faster run")
    args = parser.parse_args()
    run_all(quick=args.quick)


if __name__ == "__main__":  # pragma: no cover
    main()
