"""Fig 15: predictor MAPE and MSE per VGG13 layer over training epochs.

Paper: both error measures fall as training proceeds, with layer 1
noticeably worse than layers 2-10.  Reproduced on the VGG13 mini (which
keeps the full model's 10-conv-layer structure); absolute MAPE values
differ from the paper (see EXPERIMENTS.md) but the trends — errors
decreasing over epochs, layer 1 the outlier — are the claim under test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import HeuristicSchedule, History, adagp_engine
from ..data import preset_split
from ..models import build_mini
from ..nn.losses import CrossEntropyLoss, accuracy
from .formats import format_series


@dataclass
class Fig15Result:
    history: History
    num_layers: int

    def layer_mape(self, layer: int) -> list[float]:
        return self.history.layer_series(layer, "mape")

    def layer_mse(self, layer: int) -> list[float]:
        return self.history.layer_series(layer, "mse")


def run_fig15(
    epochs: int = 24,
    num_train: int = 256,
    num_val: int = 128,
    batch_size: int = 32,
    lr: float = 0.02,
    predictor_lr: float = 3e-3,
    seed: int = 0,
    callbacks: tuple = (),
) -> Fig15Result:
    """Train VGG13-mini with ADA-GP, recording per-layer predictor error."""
    split = preset_split("Cifar10", num_train=num_train, num_val=num_val, seed=seed)
    model = build_mini("VGG13", 10, rng=np.random.default_rng(seed + 1))
    engine = adagp_engine(
        model,
        CrossEntropyLoss(),
        metric_fn=accuracy,
        lr=lr,
        predictor_lr=predictor_lr,
        schedule=HeuristicSchedule(
            warmup_epochs=6, ladder=((3, (4, 1)), (3, (3, 1)), (3, (2, 1)))
        ),
        callbacks=callbacks,
    )
    history = engine.fit(
        lambda: split.train.batches(batch_size, rng=np.random.default_rng(seed + 2)),
        lambda: split.val.batches(2 * batch_size, shuffle=False),
        epochs=epochs,
    )
    return Fig15Result(history=history, num_layers=len(engine.layers))


def format_fig15(result: Fig15Result, kind: str = "mape", max_layers: int = 10) -> str:
    layers = min(result.num_layers, max_layers)
    series = {
        f"layer {i + 1}": result.history.layer_series(i, kind)
        for i in range(layers)
    }
    xs = list(range(1, result.history.num_epochs + 1))
    label = "MAPE (%)" if kind == "mape" else "MSE"
    return format_series(
        f"Fig 15{'a' if kind == 'mape' else 'b'}: predictor {label} per layer",
        "epoch",
        series,
        xs,
    )


def main() -> None:  # pragma: no cover
    result = run_fig15()
    print(format_fig15(result, "mape"))
    print()
    print(format_fig15(result, "mse"))


if __name__ == "__main__":  # pragma: no cover
    main()
