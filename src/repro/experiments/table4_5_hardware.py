"""Tables 4 & 5: FPGA resource/power and ASIC area/power of the designs.

These compose the component cost library of :mod:`repro.accel.area`
(calibrated to the paper's Vivado / Design Compiler results — see the
module docstring there) and additionally reproduce the §6.6.1
equal-power / equal-area study: a baseline granted ~10-11% extra PEs
gains only ~4-6% speedup, far less than ADA-GP-MAX's ~46%.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel import (
    AcceleratorConfig,
    AcceleratorModel,
    AdaGPDesign,
    asic_area,
    asic_power,
    fpga_power,
    fpga_resources,
)
from ..core import HeuristicSchedule
from ..models import spec_for
from .formats import format_table

DESIGN_ORDER: list[AdaGPDesign | None] = [
    None,
    AdaGPDesign.LOW,
    AdaGPDesign.EFFICIENT,
    AdaGPDesign.MAX,
]


def _design_name(design: AdaGPDesign | None) -> str:
    return "Baseline" if design is None else design.value


def format_table4a() -> str:
    rows = []
    for design in DESIGN_ORDER:
        r = fpga_resources(design)
        rows.append(
            [_design_name(design), r.clb_luts, r.clb_registers, r.ramb36,
             r.ramb18, r.dsp48]
        )
    return format_table(
        ["Design", "#CLB LUTs", "#CLB Registers", "#RAMB36", "#RAMB18", "#DSP48E1s"],
        rows,
        title="Table 4a: FPGA resource utilization",
    )


def format_table4b() -> str:
    rows = []
    for design in DESIGN_ORDER:
        p = fpga_power(design)
        rows.append(
            [
                _design_name(design),
                f"{p.clocks:.3f}",
                f"{p.logic:.3f}",
                f"{p.signals:.3f}",
                f"{p.bram:.3f}",
                f"{p.dsp:.3f}",
                f"{p.static:.3f}",
                f"{p.total:.3f}",
            ]
        )
    return format_table(
        ["Design", "Clocks", "Logic", "Signals", "BRAM", "DSPs", "Static", "Total"],
        rows,
        title="Table 4b: FPGA on-chip power (watts)",
    )


def format_table5a() -> str:
    rows = []
    for design in DESIGN_ORDER:
        a = asic_area(design)
        rows.append(
            [_design_name(design), a.combinational, a.buf_inv,
             a.net_interconnect, a.total_cell, a.total]
        )
    return format_table(
        ["Design", "Combinational", "Buf/Inv", "Net Interconnect", "Total Cell",
         "Total Area"],
        rows,
        title="Table 5a: ASIC area",
    )


def format_table5b() -> str:
    rows = []
    for design in DESIGN_ORDER:
        p = asic_power(design)
        rows.append(
            [
                _design_name(design),
                f"{p.internal:.2e}",
                f"{p.switching:.2e}",
                f"{p.leakage:.2e}",
                f"{p.total:.2e}",
            ]
        )
    return format_table(
        ["Design", "Internal", "Switching", "Leakage", "Total"],
        rows,
        title="Table 5b: ASIC power (microwatts)",
    )


@dataclass
class EqualResourceRow:
    dataset: str
    extra_pe_fraction: float
    baseline_gain: float  # bigger-baseline speedup over 180-PE baseline
    adagp_max_gain: float  # ADA-GP-MAX speedup over 180-PE baseline


def run_equal_resource_study(
    extra_pe_fraction: float = 0.10,
    datasets: list[str] | None = None,
    model: str = "ResNet50",
    epochs: int = 90,
    batches_per_epoch: int = 50,
    batch: int = 32,
) -> list[EqualResourceRow]:
    """§6.6.1: give the baseline the same power/area budget as ADA-GP-MAX.

    The paper adds 10% PEs (FPGA, equal power) or 11% (ASIC, equal area)
    and measures only a ~4.3-5.5% baseline speedup.
    """
    datasets = datasets or ["Cifar10", "Cifar100", "ImageNet"]
    base_cfg = AcceleratorConfig()
    extra_cols = max(int(round(base_cfg.cols * (1 + extra_pe_fraction))), base_cfg.cols + 1)
    big_cfg = AcceleratorConfig(rows=base_cfg.rows, cols=extra_cols)
    small = AcceleratorModel(base_cfg)
    big = AcceleratorModel(big_cfg)
    schedule = HeuristicSchedule()
    rows = []
    for dataset in datasets:
        spec = spec_for(model, dataset)
        base_cycles = small.baseline_training_cost(
            spec, epochs, batches_per_epoch, batch
        ).cycles
        big_cycles = big.baseline_training_cost(
            spec, epochs, batches_per_epoch, batch
        ).cycles
        ada_cycles = small.training_cost(
            spec, AdaGPDesign.MAX, schedule, epochs, batches_per_epoch, batch
        ).cycles
        rows.append(
            EqualResourceRow(
                dataset=dataset,
                extra_pe_fraction=extra_pe_fraction,
                baseline_gain=base_cycles / big_cycles - 1.0,
                adagp_max_gain=base_cycles / ada_cycles - 1.0,
            )
        )
    return rows


def format_equal_resource(rows: list[EqualResourceRow]) -> str:
    table_rows = [
        [
            r.dataset,
            f"+{r.extra_pe_fraction:.0%} PEs",
            f"{r.baseline_gain:+.2%}",
            f"{r.adagp_max_gain:+.2%}",
        ]
        for r in rows
    ]
    return format_table(
        ["Dataset", "Baseline budget", "Bigger-baseline gain", "ADA-GP-MAX gain"],
        table_rows,
        title="§6.6.1: equal power/area study",
    )


def main() -> None:  # pragma: no cover
    print(format_table4a())
    print()
    print(format_table4b())
    print()
    print(format_table5a())
    print()
    print(format_table5b())
    print()
    print(format_equal_resource(run_equal_resource_study()))


if __name__ == "__main__":  # pragma: no cover
    main()
