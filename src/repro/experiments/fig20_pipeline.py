"""Fig 20: ADA-GP speedup over GPipe / DAPPLE / Chimera (4 devices).

Paper: up to 1.68x and ~1.654x average over GPipe and DAPPLE, and up to
1.6x / ~1.575x average over Chimera, on ImageNet across the 13 models.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel import AcceleratorModel, AdaGPDesign
from ..core import HeuristicSchedule
from ..models import CLASSIFICATION_MODELS, spec_for
from ..pipeline import PipelineConfig, PipelineKind, pipeline_speedup
from .formats import format_table, geometric_mean


@dataclass
class Fig20Row:
    model: str
    pipeline: PipelineKind
    low: float
    efficient: float
    max_: float


def run_fig20(
    pipeline: PipelineKind = PipelineKind.GPIPE,
    dataset: str = "ImageNet",
    models: list[str] | None = None,
    epochs: int = 90,
    batches_per_epoch: int = 20,
    batch: int = 32,
) -> list[Fig20Row]:
    models = models or CLASSIFICATION_MODELS
    accelerator = AcceleratorModel()
    config = PipelineConfig(num_stages=4, micro_batches=4)
    schedule = HeuristicSchedule()
    rows = []
    for model_name in models:
        spec = spec_for(model_name, dataset)
        values = {
            design: pipeline_speedup(
                spec,
                pipeline,
                design,
                accelerator=accelerator,
                config=config,
                schedule=schedule,
                epochs=epochs,
                batches_per_epoch=batches_per_epoch,
                batch=batch,
            )
            for design in AdaGPDesign
        }
        rows.append(
            Fig20Row(
                model=model_name,
                pipeline=pipeline,
                low=values[AdaGPDesign.LOW],
                efficient=values[AdaGPDesign.EFFICIENT],
                max_=values[AdaGPDesign.MAX],
            )
        )
    return rows


def format_fig20(rows: list[Fig20Row]) -> str:
    if not rows:
        raise ValueError("no rows to format")
    pipeline = rows[0].pipeline
    table_rows = [[r.model, r.low, r.efficient, r.max_] for r in rows]
    table_rows.append(
        [
            "Geomean",
            geometric_mean([r.low for r in rows]),
            geometric_mean([r.efficient for r in rows]),
            geometric_mean([r.max_ for r in rows]),
        ]
    )
    return format_table(
        ["Model", "ADA-GP-LOW", "ADA-GP-Efficient", "ADA-GP-MAX"],
        table_rows,
        title=f"Fig 20: speedup over {pipeline.value} baseline (4 devices, ImageNet)",
    )


def main() -> None:  # pragma: no cover
    for pipeline in PipelineKind:
        print(format_fig20(run_fig20(pipeline)))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
