"""Fig 20: ADA-GP speedup over GPipe / DAPPLE / Chimera (4 devices).

Paper: up to 1.68x and ~1.654x average over GPipe and DAPPLE, and up to
1.6x / ~1.575x average over Chimera, on ImageNet across the 13 models.

Two modes:

* :func:`run_fig20` — the original *analytical* mode: full-size model
  specs costed on the accelerator cycle model, schedules evaluated in
  closed form (validated by :mod:`repro.pipeline.simulator`).
* :func:`run_fig20_measured` — the *measured* mode: trainable mini
  models are stage-partitioned and actually executed by
  :class:`repro.pipeline.PipelineExecutor` under a phase schedule; the
  reported makespans come from measured per-slot NumPy durations placed
  on virtual device clocks.  The analytical simulator stays the oracle:
  every measured timeline must pass ``Timeline.validate()`` plus the
  dependency rules, and each row carries the analytical speedup computed
  from the *measured* mean tf/tb/tf_gp for a side-by-side check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..accel import AcceleratorModel, AdaGPDesign
from ..core import HeuristicSchedule, Phase, pipeline_adagp_engine
from ..models import CLASSIFICATION_MODELS, build_mini, spec_for
from ..nn.losses import CrossEntropyLoss
from ..pipeline import (
    PipelineConfig,
    PipelineKind,
    pipeline_speedup,
    sequence_makespan,
)
from .formats import format_table, geometric_mean


@dataclass
class Fig20Row:
    model: str
    pipeline: PipelineKind
    low: float
    efficient: float
    max_: float


def run_fig20(
    pipeline: PipelineKind = PipelineKind.GPIPE,
    dataset: str = "ImageNet",
    models: list[str] | None = None,
    epochs: int = 90,
    batches_per_epoch: int = 20,
    batch: int = 32,
) -> list[Fig20Row]:
    models = models or CLASSIFICATION_MODELS
    accelerator = AcceleratorModel()
    config = PipelineConfig(num_stages=4, micro_batches=4)
    schedule = HeuristicSchedule()
    rows = []
    for model_name in models:
        spec = spec_for(model_name, dataset)
        values = {
            design: pipeline_speedup(
                spec,
                pipeline,
                design,
                accelerator=accelerator,
                config=config,
                schedule=schedule,
                epochs=epochs,
                batches_per_epoch=batches_per_epoch,
                batch=batch,
            )
            for design in AdaGPDesign
        }
        rows.append(
            Fig20Row(
                model=model_name,
                pipeline=pipeline,
                low=values[AdaGPDesign.LOW],
                efficient=values[AdaGPDesign.EFFICIENT],
                max_=values[AdaGPDesign.MAX],
            )
        )
    return rows


def format_fig20(rows: list[Fig20Row]) -> str:
    if not rows:
        raise ValueError("no rows to format")
    pipeline = rows[0].pipeline
    table_rows = [[r.model, r.low, r.efficient, r.max_] for r in rows]
    table_rows.append(
        [
            "Geomean",
            geometric_mean([r.low for r in rows]),
            geometric_mean([r.efficient for r in rows]),
            geometric_mean([r.max_ for r in rows]),
        ]
    )
    return format_table(
        ["Model", "ADA-GP-LOW", "ADA-GP-Efficient", "ADA-GP-MAX"],
        table_rows,
        title=f"Fig 20: speedup over {pipeline.value} baseline (4 devices, ImageNet)",
    )


# ----------------------------------------------------------------------
# Measured mode: real NumPy stages on the pipeline executor.
# ----------------------------------------------------------------------

#: Default measured phase sequence: one warm-up/BP prefix, then the
#: paper's 4:1 GP:BP alternation for two rounds.
MEASURED_PHASES: tuple[Phase, ...] = (
    Phase.WARMUP,
    Phase.BP,
    Phase.GP, Phase.GP, Phase.GP, Phase.GP,
    Phase.BP,
    Phase.GP, Phase.GP, Phase.GP, Phase.GP,
    Phase.BP,
)


@dataclass
class Fig20MeasuredRow:
    """Measured vs analytical speedup of one (model, schedule) pair."""

    model: str
    pipeline: PipelineKind
    baseline_makespan: float  # all-BP sequence, measured seconds
    adagp_makespan: float  # phase-scheduled sequence, measured seconds
    speedup: float  # baseline_makespan / adagp_makespan
    analytical_speedup: float  # simulator oracle at measured tf/tb/tf_gp
    baseline_idle: float  # idle fraction of the all-BP schedule
    adagp_idle: float  # idle fraction with GP streams filling bubbles


def _idle_fraction(executor) -> float:
    busy = sum(t.end - t.start for t in executor.timeline.tasks)
    span = executor.makespan * executor.config.num_stages
    return float(1.0 - busy / span) if span > 0 else 0.0


def _drive(model_name, kind, phases, num_stages, micro_batches, batch,
           num_classes, image, seed):
    """Run one measured phase sequence; returns the engine's executor."""
    model = build_mini(model_name, num_classes, rng=np.random.default_rng(seed))
    engine = pipeline_adagp_engine(
        model,
        CrossEntropyLoss(),
        num_stages=num_stages,
        micro_batches=micro_batches,
        kind=kind.value,
        plateau_scheduler=False,
    )
    data_rng = np.random.default_rng(seed + 1)
    for phase in phases:
        inputs = data_rng.standard_normal((batch, 3, image, image)).astype(
            np.float32
        )
        targets = data_rng.integers(0, num_classes, batch)
        engine.train_batch(inputs, targets, phase)
    executor = engine.strategies[Phase.BP].executor
    executor.validate()  # device exclusivity + the simulator's dependency rules
    return executor


def run_fig20_measured(
    pipeline: PipelineKind = PipelineKind.GPIPE,
    models: Sequence[str] = ("ResNet50", "VGG13"),
    phases: Sequence[Phase] = MEASURED_PHASES,
    num_stages: int = 4,
    micro_batches: int = 4,
    batch: int = 32,
    num_classes: int = 10,
    image: int = 16,
    seed: int = 0,
) -> list[Fig20MeasuredRow]:
    """Measured Fig 20: execute the phase sequence on real stages.

    For each model, the same data stream is run twice — once all-BP
    (the GPipe/DAPPLE baseline) and once under ``phases`` with Phase-GP
    streams — and the measured timeline makespans are compared.  The
    analytical speedup column evaluates the closed-form sequence
    makespan at the *measured* mean stage times, tying the measurement
    back to the simulator oracle.
    """
    if pipeline == PipelineKind.CHIMERA:
        raise ValueError("measured mode executes GPipe/DAPPLE orderings only")
    phases = list(phases)
    rows = []
    for model_name in models:
        baseline = _drive(
            model_name, pipeline, [Phase.BP] * len(phases), num_stages,
            micro_batches, batch, num_classes, image, seed,
        )
        adagp = _drive(
            model_name, pipeline, phases, num_stages, micro_batches, batch,
            num_classes, image, seed,
        )
        # Oracle check: closed-form speedup at the measured stage times.
        def mean_duration(executor, op, phase_kinds):
            durations = [
                t.end - t.start
                for t, run_kind in _tasks_with_kind(executor)
                if t.kind == op and run_kind in phase_kinds
            ]
            return float(np.mean(durations)) if durations else 0.0

        tf = mean_duration(adagp, "fw", ("bp",))
        tb = mean_duration(adagp, "bw", ("bp",))
        tf_gp = mean_duration(adagp, "fw", ("gp",)) or tf
        config = PipelineConfig(num_stages=num_stages, micro_batches=micro_batches)
        analytical_base = sequence_makespan(
            pipeline, config, [Phase.BP] * len(phases), tf, tb
        )
        analytical_ada = sequence_makespan(
            pipeline, config, phases, tf, tb, tf_gp=tf_gp
        )
        rows.append(
            Fig20MeasuredRow(
                model=model_name,
                pipeline=pipeline,
                baseline_makespan=baseline.makespan,
                adagp_makespan=adagp.makespan,
                speedup=baseline.makespan / adagp.makespan,
                analytical_speedup=analytical_base / analytical_ada,
                baseline_idle=_idle_fraction(baseline),
                adagp_idle=_idle_fraction(adagp),
            )
        )
    return rows


def _tasks_with_kind(executor):
    """Pair every task with its batch's run kind ('bp' or 'gp')."""
    bw_batches = {t.batch for t in executor.timeline.tasks if t.kind == "bw"}
    for task in executor.timeline.tasks:
        yield task, ("bp" if task.batch in bw_batches else "gp")


def format_fig20_measured(rows: list[Fig20MeasuredRow]) -> str:
    if not rows:
        raise ValueError("no rows to format")
    pipeline = rows[0].pipeline
    table_rows = [
        [
            r.model,
            f"{r.baseline_makespan * 1e3:.1f}",
            f"{r.adagp_makespan * 1e3:.1f}",
            r.speedup,
            r.analytical_speedup,
            f"{r.baseline_idle:.0%} -> {r.adagp_idle:.0%}",
        ]
        for r in rows
    ]
    return format_table(
        ["Model", "BP ms", "ADA-GP ms", "Speedup", "Analytical", "Idle"],
        table_rows,
        title=(
            f"Fig 20 (measured): ADA-GP vs {pipeline.value} on executed "
            "mini-model stages (4 virtual devices)"
        ),
    )


def main() -> None:  # pragma: no cover
    for pipeline in PipelineKind:
        print(format_fig20(run_fig20(pipeline)))
        print()
    for pipeline in (PipelineKind.GPIPE, PipelineKind.DAPPLE):
        print(format_fig20_measured(run_fig20_measured(pipeline)))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
