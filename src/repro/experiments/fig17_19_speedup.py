"""Figs 17-19: single-chip speedups over WS / RS / IS dataflow baselines.

Paper: across 13 models x 3 datasets, ADA-GP-MAX averages ~1.46-1.48x
(up to 1.51-1.58x), with Efficient slightly below MAX and LOW slightly
below Efficient, on all three dataflows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel import AcceleratorConfig, AcceleratorModel, AdaGPDesign, DataflowKind
from ..core import HeuristicSchedule
from ..models import CLASSIFICATION_MODELS, spec_for
from .formats import format_table, geometric_mean

FIGURE_OF_DATAFLOW = {
    DataflowKind.WEIGHT_STATIONARY: "Fig 17",
    DataflowKind.ROW_STATIONARY: "Fig 18",
    DataflowKind.INPUT_STATIONARY: "Fig 19",
}


@dataclass
class SpeedupRow:
    model: str
    dataset: str
    dataflow: DataflowKind
    low: float
    efficient: float
    max_: float


def run_speedups(
    dataflow: DataflowKind = DataflowKind.WEIGHT_STATIONARY,
    datasets: list[str] | None = None,
    models: list[str] | None = None,
    epochs: int = 90,
    batches_per_epoch: int = 50,
    batch: int = 32,
) -> list[SpeedupRow]:
    """Speedup of each ADA-GP design over the chosen dataflow baseline."""
    datasets = datasets or ["Cifar10", "Cifar100", "ImageNet"]
    models = models or CLASSIFICATION_MODELS
    accelerator = AcceleratorModel(AcceleratorConfig(dataflow=dataflow))
    schedule = HeuristicSchedule()
    rows = []
    for dataset in datasets:
        for model_name in models:
            spec = spec_for(model_name, dataset)
            values = {
                design: accelerator.speedup(
                    spec,
                    design,
                    schedule=schedule,
                    epochs=epochs,
                    batches_per_epoch=batches_per_epoch,
                    batch=batch,
                )
                for design in AdaGPDesign
            }
            rows.append(
                SpeedupRow(
                    model=model_name,
                    dataset=dataset,
                    dataflow=dataflow,
                    low=values[AdaGPDesign.LOW],
                    efficient=values[AdaGPDesign.EFFICIENT],
                    max_=values[AdaGPDesign.MAX],
                )
            )
    return rows


def format_speedups(rows: list[SpeedupRow]) -> str:
    if not rows:
        raise ValueError("no speedup rows to format")
    dataflow = rows[0].dataflow
    blocks = []
    for dataset in dict.fromkeys(r.dataset for r in rows):
        subset = [r for r in rows if r.dataset == dataset]
        table_rows = [
            [r.model, r.low, r.efficient, r.max_] for r in subset
        ]
        table_rows.append(
            [
                "Geomean",
                geometric_mean([r.low for r in subset]),
                geometric_mean([r.efficient for r in subset]),
                geometric_mean([r.max_ for r in subset]),
            ]
        )
        blocks.append(
            format_table(
                ["Model", "ADA-GP-LOW", "ADA-GP-Efficient", "ADA-GP-MAX"],
                table_rows,
                title=(
                    f"{FIGURE_OF_DATAFLOW[dataflow]}: speedup over "
                    f"{dataflow.value} baseline — {dataset}"
                ),
            )
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover
    for dataflow in (
        DataflowKind.WEIGHT_STATIONARY,
        DataflowKind.ROW_STATIONARY,
        DataflowKind.INPUT_STATIONARY,
    ):
        print(format_speedups(run_speedups(dataflow)))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
