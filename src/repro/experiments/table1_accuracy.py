"""Table 1: accuracy of BP vs ADA-GP across models and datasets.

Paper: 13 models x {CIFAR10, CIFAR100, ImageNet}, ADA-GP within ~1-2% of
(often above) the BP baseline.  Reproduced with topology-preserving mini
models on synthetic datasets (DESIGN.md §2): what must hold is the
*comparison* — ADA-GP reaching accuracy similar to or better than BP on
identical data — not the absolute ImageNet numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import HeuristicSchedule, adagp_engine, bp_engine
from ..data import preset_split
from ..models import CLASSIFICATION_MODELS, build_mini
from ..nn.losses import CrossEntropyLoss, accuracy
from .formats import format_table

# Class counts of the paper's datasets mapped onto the synthetic presets.
DATASET_CLASSES = {"Cifar10": 10, "Cifar100": 100, "ImageNet": 200}

# Mini-scale schedule: compressed warm-up + ratio ladder (paper §3.5
# structure at reduced epoch counts).
MINI_SCHEDULE = dict(warmup_epochs=6, ladder=((3, (4, 1)), (3, (3, 1)), (3, (2, 1))))

# Per-family learning rates for the minis (bottleneck ResNets need a
# hotter start at this scale; one LR per family, identical for BP and
# ADA-GP so the comparison stays controlled).
MODEL_LR: dict[str, float] = {
    "ResNet50": 0.1,
    "ResNet101": 0.1,
    "ResNet152": 0.1,
}
DEFAULT_LR = 0.05


@dataclass
class Table1Row:
    model: str
    dataset: str
    bp_accuracy: float
    adagp_accuracy: float

    @property
    def delta(self) -> float:
        return self.adagp_accuracy - self.bp_accuracy


def _train_once(
    model_name: str,
    dataset: str,
    use_adagp: bool,
    epochs: int,
    num_train: int,
    num_val: int,
    batch_size: int,
    lr: float,
    seed: int,
    callbacks: tuple = (),
) -> float:
    classes = DATASET_CLASSES[dataset]
    split = preset_split(dataset, num_train=num_train, num_val=num_val, seed=seed)
    model = build_mini(model_name, classes, rng=np.random.default_rng(seed + 1))
    loss = CrossEntropyLoss()
    if use_adagp:
        engine = adagp_engine(
            model,
            loss,
            metric_fn=accuracy,
            lr=lr,
            schedule=HeuristicSchedule(**MINI_SCHEDULE),
            callbacks=callbacks,
        )
    else:
        engine = bp_engine(
            model, loss, metric_fn=accuracy, lr=lr, callbacks=callbacks
        )
    history = engine.fit(
        lambda: split.train.batches(
            batch_size, rng=np.random.default_rng(seed + 2)
        ),
        lambda: split.val.batches(2 * batch_size, shuffle=False),
        epochs=epochs,
    )
    return history.best_metric


def run_table1(
    models: list[str] | None = None,
    datasets: list[str] | None = None,
    epochs: int = 20,
    num_train: int = 256,
    num_val: int = 128,
    batch_size: int = 32,
    lr: float | None = None,
    seed: int = 0,
    callbacks: tuple = (),
) -> list[Table1Row]:
    """Train every (model, dataset) pair with BP and with ADA-GP.

    ``lr=None`` uses the per-family defaults in :data:`MODEL_LR`.
    ``callbacks`` (engine :class:`~repro.core.Callback` objects) are
    attached to every training run — e.g. one shared
    :class:`~repro.core.ThroughputTimer` to measure the sweep.
    """
    models = models if models is not None else CLASSIFICATION_MODELS
    datasets = datasets if datasets is not None else list(DATASET_CLASSES)
    rows = []
    for model_name in models:
        model_lr = lr if lr is not None else MODEL_LR.get(model_name, DEFAULT_LR)
        for dataset in datasets:
            bp_acc = _train_once(
                model_name, dataset, False, epochs, num_train, num_val,
                batch_size, model_lr, seed, callbacks,
            )
            ada_acc = _train_once(
                model_name, dataset, True, epochs, num_train, num_val,
                batch_size, model_lr, seed, callbacks,
            )
            rows.append(Table1Row(model_name, dataset, bp_acc, ada_acc))
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    datasets = sorted({r.dataset for r in rows}, key=list(DATASET_CLASSES).index)
    headers = ["Model"] + [f"{d} {c}" for d in datasets for c in ("BP", "ADA-GP")]
    by_model: dict[str, dict[str, Table1Row]] = {}
    for row in rows:
        by_model.setdefault(row.model, {})[row.dataset] = row
    table_rows = []
    for model, per_dataset in by_model.items():
        cells: list[object] = [model]
        for dataset in datasets:
            row = per_dataset.get(dataset)
            cells.append(row.bp_accuracy if row else float("nan"))
            cells.append(row.adagp_accuracy if row else float("nan"))
        table_rows.append(cells)
    return format_table(
        headers,
        table_rows,
        title="Table 1: Accuracy (%) — BP baseline vs ADA-GP (mini/synthetic scale)",
    )


def main() -> None:  # pragma: no cover - exercised via examples
    rows = run_table1()
    print(format_table1(rows))
    deltas = [r.delta for r in rows]
    print(
        f"\nmean accuracy delta (ADA-GP - BP): {np.mean(deltas):+.2f}% "
        f"(paper: +0.75% CIFAR10, +0.88% CIFAR100, -0.3% ImageNet)"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
