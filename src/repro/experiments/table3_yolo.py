"""Table 3: YOLO-style detector on synthetic scenes (PascalVOC stand-in).

Paper: ADA-GP keeps class accuracy / test mAP at baseline levels while
cutting YOLO-v3 training cycles by 1.17x (Efficient) and 1.26x (MAX).
Reproduced with the MiniYolo grid detector; cycle columns come from the
full-size YOLO-v3 spec on the accelerator model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..accel import AcceleratorModel, AdaGPDesign
from ..core import HeuristicSchedule, adagp_engine, bp_engine
from ..core.metrics import detection_class_accuracy, mean_average_precision
from ..data.detection import DetectionDataset, synthetic_detection
from ..models import MiniYolo, YoloLoss, decode_predictions, spec_for
from .formats import format_table


@dataclass
class Table3Row:
    method: str
    class_accuracy: float
    test_map: float
    cycles_e9: float


def _evaluate(model: MiniYolo, dataset: DetectionDataset) -> tuple[float, float]:
    model.eval()
    predictions = model(dataset.images)
    model.train()
    class_acc = detection_class_accuracy(predictions, dataset.grid_targets)
    detections = decode_predictions(predictions, conf_threshold=0.5)
    test_map = mean_average_precision(
        detections, dataset.boxes, num_classes=dataset.num_classes,
        iou_threshold=0.5,
    )
    return class_acc, test_map


def _training_cycles(
    design: AdaGPDesign | None, epochs: int, batches: int, batch: int = 1
) -> float:
    """Full-size YOLO-v3 training cycles (x1e9).

    Detection fine-tuning runs few epochs at tiny batch (batch=1 here, a
    realistic VOC setting); with the predictor's alpha amortized over a
    single sample the resulting ratios land on the paper's Table 3
    (1.17x Efficient, 1.26x MAX) — the reason YOLO gains less than the
    ImageNet CNNs.
    """
    spec = spec_for("YOLO-v3")
    accelerator = AcceleratorModel()
    if design is None:
        cost = accelerator.baseline_training_cost(spec, epochs, batches, batch)
    else:
        cost = accelerator.training_cost(
            spec, design, HeuristicSchedule(), epochs, batches, batch
        )
    return cost.cycles / 1e9


def _batches(
    dataset: DetectionDataset, batch_size: int, seed: int
) -> Iterator[tuple]:
    yield from dataset.batches(batch_size, shuffle=True, seed=seed)


def run_table3(
    epochs: int = 60,
    num_images: int = 320,
    batch_size: int = 16,
    lr: float = 0.01,
    seed: int = 0,
    cycle_epochs: int = 20,
    cycle_batches_per_epoch: int = 500,
    callbacks: tuple = (),
) -> list[Table3Row]:
    """Train MiniYolo with BP and ADA-GP; report detection metrics.

    Detection needs far more optimizer steps than classification at this
    scale (box regression), hence the larger corpus / smaller batch /
    longer run; with the defaults the BP baseline reaches ~0.5 mAP@0.5 —
    the paper's PascalVOC figure is 0.4685.
    """
    train = synthetic_detection(num_images=num_images, seed=seed)
    val = synthetic_detection(num_images=64, seed=seed + 100)
    rows = []
    configs: list[tuple[str, AdaGPDesign | None]] = [
        ("Baseline(BP)", None),
        ("ADA-GP-Efficient", AdaGPDesign.EFFICIENT),
        ("ADA-GP-MAX", AdaGPDesign.MAX),
    ]
    for method, design in configs:
        model = MiniYolo(
            num_classes=train.num_classes,
            grid_size=train.grid_size,
            rng=np.random.default_rng(seed + 1),
        )
        loss = YoloLoss()
        if design is None:
            engine = bp_engine(model, loss, lr=lr, callbacks=callbacks)
        else:
            # The software algorithm is identical for Efficient and MAX
            # (they differ in hardware); metrics coincide, like the
            # paper's Table 3 where both report 82.51 / 0.4674.
            engine = adagp_engine(
                model,
                loss,
                lr=lr,
                schedule=HeuristicSchedule(
                    warmup_epochs=14, ladder=((6, (4, 1)), (6, (3, 1)), (6, (2, 1)))
                ),
                callbacks=callbacks,
            )
        engine.fit(
            lambda: _batches(train, batch_size, seed + 2),
            lambda: _batches(val, 64, seed + 3),
            epochs=epochs,
        )
        class_acc, test_map = _evaluate(model, val)
        rows.append(
            Table3Row(
                method=method,
                class_accuracy=class_acc,
                test_map=test_map,
                cycles_e9=_training_cycles(
                    design, cycle_epochs, cycle_batches_per_epoch
                ),
            )
        )
    return rows


def format_table3(rows: list[Table3Row]) -> str:
    table_rows = [
        [r.method, r.class_accuracy, f"{r.test_map:.4f}", r.cycles_e9]
        for r in rows
    ]
    return format_table(
        ["Method", "Class Acc", "Test MAP", "#Cycles(x1e9)"],
        table_rows,
        title="Table 3: YOLO detector on synthetic scenes (PascalVOC stand-in)",
    )


def main() -> None:  # pragma: no cover
    print(format_table3(run_table3()))


if __name__ == "__main__":  # pragma: no cover
    main()
