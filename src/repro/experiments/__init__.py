"""Experiment harness: one module per paper table/figure.

=================  =====================================================
Module             Reproduces
=================  =====================================================
table1_accuracy    Table 1 — BP vs ADA-GP accuracy (13 models x 3 data)
fig15_predictor_error   Fig 15 — predictor MAPE/MSE per layer (VGG13)
fig16_characterization  Fig 16 — VGG13 per-layer cycle breakdown
fig17_19_speedup   Figs 17/18/19 — speedup over WS/RS/IS baselines
table2_transformer Table 2 — Transformer accuracy/BLEU/cycles
table3_yolo        Table 3 — YOLO class acc / mAP / cycles
fig20_pipeline     Fig 20 — speedup over GPipe/DAPPLE/Chimera
table4_5_hardware  Tables 4/5 — FPGA/ASIC resources, area, power
fig21_energy       Fig 21 — memory-access energy comparison
runner             all of the above (``python -m repro.experiments.runner``)
=================  =====================================================
"""

from . import (
    fig15_predictor_error,
    fig16_characterization,
    fig17_19_speedup,
    fig20_pipeline,
    fig21_energy,
    table1_accuracy,
    table2_transformer,
    table3_yolo,
    table4_5_hardware,
)
from .runner import run_all

__all__ = [
    "fig15_predictor_error",
    "fig16_characterization",
    "fig17_19_speedup",
    "fig20_pipeline",
    "fig21_energy",
    "table1_accuracy",
    "table2_transformer",
    "table3_yolo",
    "table4_5_hardware",
    "run_all",
]
