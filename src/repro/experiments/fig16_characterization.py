"""Fig 16: per-layer training-cost characterization of VGG13.

Paper: for each of VGG13's 10 conv layers, total training cycles are
split into Warm-up / Phase-BP / Phase-GP segments for ADA-GP-Efficient
and compared against the plain BP baseline; ADA-GP's bar is lower for
every layer because Phase-GP batches skip that layer's backward work.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel import AcceleratorModel, AdaGPDesign
from ..core import HeuristicSchedule, Phase, phase_counts
from ..models import spec_for
from .formats import format_table


@dataclass
class Fig16Row:
    layer: str
    baseline_cycles: int
    warmup_cycles: int
    phase_bp_cycles: int
    phase_gp_cycles: int

    @property
    def adagp_total(self) -> int:
        return self.warmup_cycles + self.phase_bp_cycles + self.phase_gp_cycles


def run_fig16(
    dataset: str = "Cifar10",
    design: AdaGPDesign = AdaGPDesign.EFFICIENT,
    epochs: int = 90,
    batches_per_epoch: int = 100,
    batch: int = 128,
    num_layers: int = 10,
) -> list[Fig16Row]:
    """Characterize VGG13 conv layers over a full training run.

    The effective batch is 128: the predictor consumes batch-averaged
    activations, so its per-layer cost (alpha) is batch-independent and
    must be amortized over a realistic training batch for the last
    (spatially tiny) VGG13 layers to profit, as they do in the paper's
    figure.
    """
    spec = spec_for("VGG13", dataset)
    accelerator = AcceleratorModel()
    schedule = HeuristicSchedule()
    counts = phase_counts(schedule, epochs, batches_per_epoch)
    per_layer = accelerator.layer_characterization(spec, design, batch)
    conv_layers = [c for c in per_layer if c.name.startswith("conv")][:num_layers]
    total_batches = epochs * batches_per_epoch
    rows = []
    for cost in conv_layers:
        rows.append(
            Fig16Row(
                layer=cost.name,
                baseline_cycles=cost.baseline * total_batches,
                warmup_cycles=cost.warmup * counts[Phase.WARMUP],
                phase_bp_cycles=cost.phase_bp * counts[Phase.BP],
                phase_gp_cycles=cost.phase_gp * counts[Phase.GP],
            )
        )
    return rows


def format_fig16(rows: list[Fig16Row]) -> str:
    table_rows = [
        [
            row.layer,
            row.baseline_cycles,
            row.warmup_cycles,
            row.phase_bp_cycles,
            row.phase_gp_cycles,
            row.adagp_total,
            f"{row.baseline_cycles / row.adagp_total:.2f}x",
        ]
        for row in rows
    ]
    return format_table(
        ["Layer", "Baseline", "Warm-up", "Phase-BP", "Phase-GP", "ADA-GP total", "Ratio"],
        table_rows,
        title="Fig 16: VGG13 per-layer training cycles (ADA-GP-Efficient vs BP)",
    )


def main() -> None:  # pragma: no cover
    print(format_fig16(run_fig16()))


if __name__ == "__main__":  # pragma: no cover
    main()
