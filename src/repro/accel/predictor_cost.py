"""Cycle/traffic cost of the on-accelerator predictor (the paper's alpha).

The predictor consumes batch-averaged activations, so unlike the model
layers its cost does *not* scale with the batch size — which is exactly
why alpha stays "smaller than the FW pass latency of each layer" (§3.7)
at realistic batch sizes.

Per predictable layer with ``units`` output channels and gradient-row
size ``row`` (masked FC, §3.6):

* pooling: negligible vector work,
* conv stage: GEMM (conv_channels x k^2) over ``pool_size^2 * units``
  positions,
* FC stage: GEMM (row x fc_in) over ``units`` positions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.specs import LayerKind, LayerSpec
from .config import AcceleratorConfig, PredictorHardware
from .dataflow import gemm_cycles
from .memory import Traffic


@dataclass(frozen=True)
class PredictorLayerCost:
    """Alpha (fw), 2*alpha (bw/training), and the traffic they cause."""

    alpha_fw: int
    alpha_bw: int
    fw_traffic: Traffic
    train_traffic: Traffic


def gradient_row_of(spec: LayerSpec) -> int:
    """Per-output-unit gradient row size of a predictable layer spec."""
    if spec.kind == LayerKind.DEPTHWISE_CONV:
        return spec.kernel_area
    if spec.kind == LayerKind.CONV:
        return spec.in_channels * spec.kernel_area
    if spec.kind == LayerKind.LINEAR:
        return spec.in_channels
    raise ValueError(f"layer kind {spec.kind} is not predictable")


def predictor_units_of(spec: LayerSpec) -> int:
    return spec.out_channels


def predictor_layer_cost(
    spec: LayerSpec,
    config: AcceleratorConfig,
    hardware: PredictorHardware,
    on_chip_weights: bool,
) -> PredictorLayerCost:
    """Cost of predicting (and of training on) one layer's gradients.

    ``on_chip_weights`` reflects the design: Efficient/MAX keep predictor
    weights in a dedicated memory (SRAM traffic); LOW must stream them
    from DRAM every use.
    """
    units = predictor_units_of(spec)
    row = gradient_row_of(spec)
    elem = config.bytes_per_element
    conv_n = hardware.pool_size * hardware.pool_size * units
    conv_cycles = gemm_cycles(
        hardware.conv_channels,
        hardware.conv_kernel * hardware.conv_kernel,
        conv_n,
        config,
    )
    fc_cycles = gemm_cycles(row, hardware.fc_in, units, config)
    alpha_fw = conv_cycles + fc_cycles
    alpha_bw = 2 * alpha_fw  # paper §3.7: predictor BW latency = 2*alpha

    weight_bytes = hardware.layer_weight_bytes(row, elem)
    act_bytes = units * hardware.pool_size * hardware.pool_size * elem
    grad_bytes = units * row * elem
    if on_chip_weights:
        fw_traffic = Traffic(sram=weight_bytes + act_bytes + grad_bytes)
        train_traffic = Traffic(sram=3 * weight_bytes + act_bytes + 2 * grad_bytes)
    else:
        fw_traffic = Traffic(
            dram_read=weight_bytes, sram=act_bytes + grad_bytes
        )
        train_traffic = Traffic(
            dram_read=2 * weight_bytes,
            dram_write=weight_bytes,
            sram=act_bytes + 2 * grad_bytes,
        )
    return PredictorLayerCost(
        alpha_fw=alpha_fw,
        alpha_bw=alpha_bw,
        fw_traffic=fw_traffic,
        train_traffic=train_traffic,
    )


def predictor_load_cycles(
    row: int, config: AcceleratorConfig, hardware: PredictorHardware
) -> int:
    """DRAM cycles to stream predictor weights for one layer (LOW design).

    The LOW design has no dedicated predictor memory, so before each
    predictor use it streams the weights the masked prediction touches
    (the FC rows for this layer's gradient-row size, §3.6) from DRAM,
    and it must first stage out the model context it displaces —
    costed as a second pass over the same bytes.
    """
    weight_bytes = hardware.layer_weight_bytes(row, config.bytes_per_element)
    return -(-2 * weight_bytes // config.dram_bandwidth_bytes_per_cycle)
