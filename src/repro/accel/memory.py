"""Off-chip / on-chip traffic model.

Counts the DRAM and global-buffer bytes each layer moves per pass.  The
key asymmetry ADA-GP exploits (§3.7, §6.6.2): a backward pass must
re-load weights and stored activations from off-chip memory and write
gradients back, whereas in Phase GP the weights are already on-chip from
the forward pass and are updated in place — the entire BW traffic
disappears for GP batches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.specs import LayerSpec
from .config import AcceleratorConfig


@dataclass(frozen=True)
class Traffic:
    """Byte counts for one unit of work (a layer pass, batch, or run)."""

    dram_read: int = 0
    dram_write: int = 0
    sram: int = 0

    def __add__(self, other: "Traffic") -> "Traffic":
        return Traffic(
            dram_read=self.dram_read + other.dram_read,
            dram_write=self.dram_write + other.dram_write,
            sram=self.sram + other.sram,
        )

    def scaled(self, factor: int) -> "Traffic":
        return Traffic(
            dram_read=self.dram_read * factor,
            dram_write=self.dram_write * factor,
            sram=self.sram * factor,
        )

    @property
    def dram_total(self) -> int:
        return self.dram_read + self.dram_write


def layer_forward_traffic(
    spec: LayerSpec, batch: int, config: AcceleratorConfig
) -> Traffic:
    """FW: read weights + input activations, write output activations."""
    elem = config.bytes_per_element
    weights = spec.weight_params * elem
    inputs = spec.input_size * batch * elem
    outputs = spec.output_size * batch * elem
    dram_read = weights + inputs
    dram_write = outputs
    # Data passes through the global buffer on the way in and out.
    sram = 2 * (dram_read + dram_write)
    return Traffic(dram_read=dram_read, dram_write=dram_write, sram=sram)


def layer_backward_traffic(
    spec: LayerSpec, batch: int, config: AcceleratorConfig
) -> Traffic:
    """BW: reload weights + activations, move gradients, update weights.

    Reads: output grads, weights (for dX), stored input activations (for
    dW), current weights + momentum (optimizer update).
    Writes: input grads, weight grads, updated weights + momentum.
    """
    elem = config.bytes_per_element
    weights = spec.weight_params * elem
    inputs = spec.input_size * batch * elem
    outputs = spec.output_size * batch * elem
    dram_read = outputs + weights + inputs + 2 * weights
    dram_write = inputs + weights + 2 * weights
    sram = 2 * (dram_read + dram_write)
    return Traffic(dram_read=dram_read, dram_write=dram_write, sram=sram)


def layer_gp_update_traffic(
    spec: LayerSpec, batch: int, config: AcceleratorConfig
) -> Traffic:
    """Extra traffic of a Phase-GP in-place weight update.

    Weights are already resident from the forward pass; only the updated
    values are written back.  Optimizer state stays in the global buffer
    (SRAM) for the layer being updated.
    """
    elem = config.bytes_per_element
    weights = spec.weight_params * elem
    return Traffic(dram_read=0, dram_write=weights, sram=4 * weights)
