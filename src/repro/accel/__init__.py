"""Systolic-accelerator simulator: cycles, traffic, energy, area/power."""

from .adagp import AcceleratorModel, BatchCost, LayerPhaseCost
from .calibrate import (
    CalibrationReport,
    OpCalibration,
    PhaseCycleCosts,
    calibrate,
    calibrate_from_bench,
    calibrated_config,
    phase_cycle_costs,
    schedule_speedup,
)
from .area import (
    AsicArea,
    AsicPower,
    FpgaPower,
    FpgaResources,
    area_overhead,
    asic_area,
    asic_power,
    equal_resource_pe_bonus,
    fpga_power,
    fpga_resources,
)
from .config import (
    AcceleratorConfig,
    AdaGPDesign,
    DataflowKind,
    PredictorHardware,
)
from .dataflow import (
    gemm_cycles,
    layer_backward_cycles,
    layer_forward_cycles,
    utilization,
)
from .energy import (
    EnergyBreakdown,
    energy_saving,
    traffic_energy,
    training_energy,
)
from .memory import (
    Traffic,
    layer_backward_traffic,
    layer_forward_traffic,
    layer_gp_update_traffic,
)
from .predictor_cost import predictor_layer_cost, predictor_load_cycles

__all__ = [
    "AcceleratorModel",
    "BatchCost",
    "LayerPhaseCost",
    "CalibrationReport",
    "OpCalibration",
    "PhaseCycleCosts",
    "calibrate",
    "calibrate_from_bench",
    "calibrated_config",
    "phase_cycle_costs",
    "schedule_speedup",
    "AsicArea",
    "AsicPower",
    "FpgaPower",
    "FpgaResources",
    "area_overhead",
    "asic_area",
    "asic_power",
    "equal_resource_pe_bonus",
    "fpga_power",
    "fpga_resources",
    "AcceleratorConfig",
    "AdaGPDesign",
    "DataflowKind",
    "PredictorHardware",
    "gemm_cycles",
    "layer_backward_cycles",
    "layer_forward_cycles",
    "utilization",
    "EnergyBreakdown",
    "energy_saving",
    "traffic_energy",
    "training_energy",
    "Traffic",
    "layer_backward_traffic",
    "layer_forward_traffic",
    "layer_gp_update_traffic",
    "predictor_layer_cost",
    "predictor_load_cycles",
]
