"""Backend-aware calibration of the cycle model against measured ops.

``benchmarks/bench_engine.py`` measures a fixed set of tensor ops on the
software backends and records them in ``BENCH_engine.json``.  This
module maps those measured timings onto the analytical cycle model of
:mod:`repro.accel.dataflow`: each benchmarked op has a known GEMM (or
SIMD) shape, so the model predicts a cycle count for it, and dividing
cycles by measured seconds yields the *implied clock frequency* at which
the modeled accelerator would match this machine's software throughput
on that op.

The per-op spread of implied frequencies is the calibration signal:

* ops whose implied MHz sits *above* the aggregate run faster in
  software than the model's relative costing expects (e.g. BLAS-saturated
  GEMMs), ops *below* run slower (e.g. reduction-bound moments);
* the aggregate (median) implied frequency turns any measured-time
  experiment into model cycles and back —
  :func:`calibrated_config` bakes it into an
  :class:`~repro.accel.config.AcceleratorConfig` so Fig 17-19 style
  analytical speedups can be reported against *this* machine's measured
  baseline instead of the paper's nominal 200 MHz.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Optional, Union

from .config import AcceleratorConfig
from .dataflow import _ceil_div, gemm_cycles

#: GEMM/SIMD shapes of the ops ``benchmarks/bench_engine.py`` times in
#: its ``_op_microbench`` (keep in sync).  Convs are costed as their
#: im2col GEMM: M = out_channels, K = in_channels * k^2,
#: N = batch * out_h * out_w.
_BENCH_BATCH = 16
_CONV_SPATIAL = 16 * 16  # stride-1, padded: out spatial == in spatial


def _conv3x3_cycles(config: AcceleratorConfig) -> int:
    n = _BENCH_BATCH * _CONV_SPATIAL
    fwd = gemm_cycles(32, 32 * 9, n, config)
    # Backward = dX GEMM + dW GEMM (layer_backward_cycles convention).
    dx = gemm_cycles(32 * 9, 32, n, config)
    dw = gemm_cycles(32, n, 32 * 9, config)
    return fwd + dx + dw


def _conv1x1_cycles(config: AcceleratorConfig) -> int:
    return gemm_cycles(64, 32, _BENCH_BATCH * _CONV_SPATIAL, config)


def _linear_cycles(config: AcceleratorConfig) -> int:
    return gemm_cycles(128, 512, 256, config)


def _attn_scores_cycles(config: AcceleratorConfig) -> int:
    # (8, 4) batched heads of a (64, 32) @ (32, 64) GEMM.
    return 8 * 4 * gemm_cycles(64, 32, 64, config)


def _bn_moments_cycles(config: AcceleratorConfig) -> int:
    # Two-pass mean/var over (16, 64, 16, 16) on the SIMD path: one
    # cycle per element per pass across the array width.
    elements = 16 * 64 * 16 * 16
    return 2 * _ceil_div(elements, config.num_pes)


OP_CYCLE_MODELS: dict[str, Callable[[AcceleratorConfig], int]] = {
    "conv3x3_fwd_bwd": _conv3x3_cycles,
    "conv1x1_fwd": _conv1x1_cycles,
    "linear_fwd": _linear_cycles,
    "attn_scores": _attn_scores_cycles,
    "bn_moments": _bn_moments_cycles,
}


@dataclass(frozen=True)
class OpCalibration:
    """One benchmarked op mapped onto the cycle model."""

    op: str
    measured_ms: float
    model_cycles: int
    implied_mhz: float

    @classmethod
    def from_timing(
        cls, op: str, measured_ms: float, config: AcceleratorConfig
    ) -> "OpCalibration":
        if measured_ms <= 0:
            raise ValueError(f"measured_ms must be positive, got {measured_ms}")
        cycles = OP_CYCLE_MODELS[op](config)
        return cls(
            op=op,
            measured_ms=measured_ms,
            model_cycles=cycles,
            implied_mhz=cycles / (measured_ms * 1e3),
        )


@dataclass(frozen=True)
class CalibrationReport:
    """Cycle-model calibration of one backend's measured op table."""

    backend: str
    ops: tuple[OpCalibration, ...]

    @property
    def implied_mhz(self) -> float:
        """Aggregate (median) implied frequency across ops."""
        values = sorted(op.implied_mhz for op in self.ops)
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])

    def cost_scale(self) -> dict[str, float]:
        """Per-op cost multiplier relative to the aggregate frequency.

        ``> 1`` marks an op the software runs *slower* (relative to the
        model's costing) than the aggregate, i.e. where the cycle model
        undercharges this backend; ``< 1`` marks ops it overcharges.
        Multiplying the model's per-op cycles by these factors reweights
        it to this machine's measured profile.
        """
        aggregate = self.implied_mhz
        return {op.op: aggregate / op.implied_mhz for op in self.ops}

    def seconds_for_cycles(self, cycles: int) -> float:
        """Wall seconds this machine needs for ``cycles`` model cycles."""
        return cycles / (self.implied_mhz * 1e6)


def calibrate(
    op_timings: Mapping[str, Mapping[str, float]],
    config: Optional[AcceleratorConfig] = None,
    backend: str = "fused",
) -> CalibrationReport:
    """Calibrate the cycle model from a measured op-timing table.

    ``op_timings`` is the ``ops`` section of ``BENCH_engine.json``'s
    ``fused_gate`` record: ``{op: {"numpy_ms": .., "fused_ms": ..}}``.
    ``backend`` picks which column to calibrate against.  Ops without a
    cycle model (or models without a measured op) are skipped, so the
    table and the model can evolve independently.
    """
    config = config if config is not None else AcceleratorConfig()
    column = f"{backend}_ms"
    ops = []
    for op, timing in sorted(op_timings.items()):
        if op not in OP_CYCLE_MODELS or column not in timing:
            continue
        ops.append(OpCalibration.from_timing(op, float(timing[column]), config))
    if not ops:
        raise ValueError(
            f"no calibratable ops for backend {backend!r}; measured "
            f"{sorted(op_timings)}, modeled {sorted(OP_CYCLE_MODELS)}"
        )
    return CalibrationReport(backend=backend, ops=tuple(ops))


def calibrate_from_bench(
    path: Union[str, Path],
    config: Optional[AcceleratorConfig] = None,
    backend: str = "fused",
) -> CalibrationReport:
    """Calibrate from a ``BENCH_engine.json`` file on disk."""
    data = json.loads(Path(path).read_text())
    try:
        op_timings = data["fused_gate"]["ops"]
    except KeyError as err:
        raise ValueError(
            f"{path} has no fused_gate.ops section; run "
            "benchmarks/bench_engine.py first"
        ) from err
    return calibrate(op_timings, config=config, backend=backend)


@dataclass(frozen=True)
class PhaseCycleCosts:
    """Per-batch cycle costs of one model on one accelerator design.

    The schedule-search objective: a realized phase mix from a trial's
    History weights these three numbers into an end-to-end speedup.
    """

    model: str
    design: str
    batch: int
    baseline_cycles: int  # plain-BP batch (no predictor anywhere)
    bp_cycles: int  # Warm-Up / Phase-BP batch (backprop + predictor training)
    gp_cycles: int  # Phase-GP batch (forward-only + predicted updates)

    def speedup(self, counts: Mapping["Phase", int]) -> float:
        """Cycle-model training speedup of a realized phase mix over the
        all-BP baseline on the same number of batches.

        ``counts`` maps :class:`~repro.core.schedule.Phase` to batch
        counts — either the arithmetic plan from
        :func:`repro.core.schedule.phase_counts` or, for an
        :class:`~repro.core.AdaptiveSchedule` whose ratios depend on
        observed predictor quality, the *realized* counts a trial's
        History recorded.
        """
        from ..core.schedule import Phase

        true_grad = counts.get(Phase.WARMUP, 0) + counts.get(Phase.BP, 0)
        gp = counts.get(Phase.GP, 0)
        total = true_grad + gp
        if total == 0:
            raise ValueError("phase counts contain no batches")
        ada = true_grad * self.bp_cycles + gp * self.gp_cycles
        return total * self.baseline_cycles / ada


def phase_cycle_costs(
    model: str,
    design: Union[str, "AdaGPDesign", None] = None,
    batch: int = 32,
    dataset: str = "ImageNet",
    config: Optional[AcceleratorConfig] = None,
) -> PhaseCycleCosts:
    """Cost one model's three batch kinds on the accelerator cycle model.

    ``model`` is a paper model name (``spec_for`` registry); ``design``
    defaults to ADA-GP-Efficient, the paper's headline configuration.
    Pass ``config=calibrated_config(report)`` to clock the model at a
    measured machine's implied frequency — the cycle *ratio* (and thus
    :meth:`PhaseCycleCosts.speedup`) is frequency-invariant, but
    per-op cost scales and absolute seconds are not.
    """
    # Imported here: accel.calibrate must stay importable from
    # accel.__init__ before accel.adagp (and without repro.models).
    from ..models import spec_for
    from .adagp import AcceleratorModel
    from .config import AdaGPDesign

    design = AdaGPDesign(design) if design is not None else AdaGPDesign.EFFICIENT
    accel = AcceleratorModel(config=config)
    spec = spec_for(model, dataset)
    return PhaseCycleCosts(
        model=model,
        design=design.value,
        batch=batch,
        baseline_cycles=accel.baseline_batch(spec, batch).cycles,
        bp_cycles=accel.phase_bp_batch(spec, batch, design).cycles,
        gp_cycles=accel.phase_gp_batch(spec, batch, design).cycles,
    )


def schedule_speedup(
    counts: Mapping["Phase", int],
    model: str,
    design: Union[str, "AdaGPDesign", None] = None,
    batch: int = 32,
    dataset: str = "ImageNet",
    config: Optional[AcceleratorConfig] = None,
) -> float:
    """One-call speedup objective for the tune subsystem.

    Weights the per-batch cycle costs of ``model`` on ``design`` by a
    phase mix (planned via :func:`~repro.core.schedule.phase_counts`, or
    realized from a trial's History) and returns training speedup over
    the all-BP baseline.  This is the second axis of the
    accuracy-vs-speedup frontier: GP share only matters insofar as the
    accelerator turns skipped backward passes into cycles saved.
    """
    return phase_cycle_costs(
        model, design=design, batch=batch, dataset=dataset, config=config
    ).speedup(counts)


def calibrated_config(
    report: CalibrationReport,
    config: Optional[AcceleratorConfig] = None,
) -> AcceleratorConfig:
    """Copy of ``config`` clocked at the report's implied frequency.

    Analytical cycle counts divided by this config's frequency then
    approximate measured wall time on the calibration machine, which
    puts the Fig 17-19 analytical speedups and the measured benchmarks
    on one time axis.
    """
    config = config if config is not None else AcceleratorConfig()
    # dataclasses.replace, not a field-by-field copy: fields added to
    # AcceleratorConfig later keep their configured values instead of
    # silently resetting to defaults.
    return dataclasses.replace(config, frequency_mhz=report.implied_mhz)
