"""End-to-end accelerator cost model for baseline BP and the three ADA-GP
hardware designs (paper §4.2, Fig 14; evaluated in §6.2-§6.3, §6.6.2).

Design differences:

* **ADA-GP-MAX** — dedicated predictor PE array + predictor memory: the
  predictor's forward (and its training during Phase BP) overlaps the
  next layer's computation on the main array; only non-hideable spill
  remains on the critical path.
* **ADA-GP-Efficient** — dedicated predictor memory only: predictor work
  serializes after each layer (cost ``alpha`` per layer in FW, ``2*alpha``
  in BW), but its weights never touch DRAM.
* **ADA-GP-LOW** — no extra hardware: in addition to serializing, every
  predictor use streams that layer's (masked) predictor weights from
  DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.schedule import HeuristicSchedule, Phase, phase_counts
from ..models.specs import LayerSpec, ModelSpec
from .config import AcceleratorConfig, AdaGPDesign, PredictorHardware
from .dataflow import layer_backward_cycles, layer_forward_cycles
from .memory import (
    Traffic,
    layer_backward_traffic,
    layer_forward_traffic,
    layer_gp_update_traffic,
)
from .predictor_cost import (
    PredictorLayerCost,
    gradient_row_of,
    predictor_layer_cost,
    predictor_load_cycles,
)


@dataclass(frozen=True)
class BatchCost:
    """Cycles + traffic for processing one batch (or an aggregate)."""

    cycles: int = 0
    traffic: Traffic = field(default_factory=Traffic)

    def __add__(self, other: "BatchCost") -> "BatchCost":
        return BatchCost(
            cycles=self.cycles + other.cycles, traffic=self.traffic + other.traffic
        )

    def scaled(self, factor: int) -> "BatchCost":
        return BatchCost(
            cycles=self.cycles * factor, traffic=self.traffic.scaled(factor)
        )


@dataclass(frozen=True)
class LayerPhaseCost:
    """Per-layer cycle breakdown used by the Fig 16 characterization."""

    name: str
    baseline: int  # FW + BW, plain backprop
    warmup: int  # FW + BW + predictor training overhead
    phase_bp: int  # same structure as warmup
    phase_gp: int  # FW + predictor inference overhead


class AcceleratorModel:
    """Costs a full training run of one model spec on the accelerator."""

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        predictor_hw: PredictorHardware | None = None,
    ) -> None:
        self.config = config or AcceleratorConfig()
        self.predictor_hw = predictor_hw or PredictorHardware()

    # ------------------------------------------------------------------
    # Per-layer primitives.
    # ------------------------------------------------------------------
    def _predictor_cost(
        self, spec: LayerSpec, design: AdaGPDesign
    ) -> PredictorLayerCost:
        on_chip = design != AdaGPDesign.LOW
        return predictor_layer_cost(spec, self.config, self.predictor_hw, on_chip)

    def _load_cycles(self, spec: LayerSpec, design: AdaGPDesign) -> int:
        """Per-use predictor weight-streaming cost (LOW design only)."""
        if design != AdaGPDesign.LOW:
            return 0
        return predictor_load_cycles(
            gradient_row_of(spec), self.config, self.predictor_hw
        )

    # ------------------------------------------------------------------
    # Batch costs.
    # ------------------------------------------------------------------
    def baseline_batch(self, model: ModelSpec, batch: int) -> BatchCost:
        """One batch of plain backprop training."""
        cycles = 0
        traffic = Traffic()
        for spec in model.layers:
            cycles += layer_forward_cycles(spec, batch, self.config)
            cycles += layer_backward_cycles(spec, batch, self.config)
            traffic = traffic + layer_forward_traffic(spec, batch, self.config)
            traffic = traffic + layer_backward_traffic(spec, batch, self.config)
        return BatchCost(cycles=cycles, traffic=traffic)

    def phase_bp_batch(
        self, model: ModelSpec, batch: int, design: AdaGPDesign
    ) -> BatchCost:
        """Phase BP (and Warm Up): backprop + predictor training."""
        fw_cycles: list[int] = []
        bw_cycles: list[int] = []
        alpha_fw: list[int] = []
        alpha_bw: list[int] = []
        traffic = Traffic()
        for spec in model.layers:
            fw = layer_forward_cycles(spec, batch, self.config)
            bw = layer_backward_cycles(spec, batch, self.config)
            traffic = traffic + layer_forward_traffic(spec, batch, self.config)
            traffic = traffic + layer_backward_traffic(spec, batch, self.config)
            a_fw = a_bw = 0
            if spec.is_predictable:
                pcost = self._predictor_cost(spec, design)
                a_fw, a_bw = pcost.alpha_fw, pcost.alpha_bw
                traffic = traffic + pcost.fw_traffic + pcost.train_traffic
                load = self._load_cycles(spec, design)
                a_fw += load
                a_bw += load
            fw_cycles.append(fw)
            bw_cycles.append(bw)
            alpha_fw.append(a_fw)
            alpha_bw.append(a_bw)
        if design == AdaGPDesign.MAX:
            cycles = _overlapped(fw_cycles, alpha_fw) + _overlapped(
                bw_cycles, alpha_bw
            )
        else:
            cycles = sum(fw_cycles) + sum(alpha_fw) + sum(bw_cycles) + sum(alpha_bw)
        return BatchCost(cycles=cycles, traffic=traffic)

    def phase_gp_batch(
        self, model: ModelSpec, batch: int, design: AdaGPDesign
    ) -> BatchCost:
        """Phase GP: forward-only with in-flight predicted weight updates."""
        fw_cycles: list[int] = []
        alpha_fw: list[int] = []
        traffic = Traffic()
        for spec in model.layers:
            fw = layer_forward_cycles(spec, batch, self.config)
            traffic = traffic + layer_forward_traffic(spec, batch, self.config)
            a_fw = 0
            if spec.is_predictable:
                pcost = self._predictor_cost(spec, design)
                a_fw = pcost.alpha_fw + self._load_cycles(spec, design)
                traffic = traffic + pcost.fw_traffic
                traffic = traffic + layer_gp_update_traffic(spec, batch, self.config)
            fw_cycles.append(fw)
            alpha_fw.append(a_fw)
        if design == AdaGPDesign.MAX:
            cycles = _overlapped(fw_cycles, alpha_fw)
        else:
            cycles = sum(fw_cycles) + sum(alpha_fw)
        return BatchCost(cycles=cycles, traffic=traffic)

    # ------------------------------------------------------------------
    # Training-run aggregation.
    # ------------------------------------------------------------------
    def training_cost(
        self,
        model: ModelSpec,
        design: AdaGPDesign,
        schedule: HeuristicSchedule,
        epochs: int,
        batches_per_epoch: int,
        batch: int = 32,
    ) -> BatchCost:
        """Total ADA-GP training cost under a phase schedule."""
        counts = phase_counts(schedule, epochs, batches_per_epoch)
        bp_cost = self.phase_bp_batch(model, batch, design)
        gp_cost = self.phase_gp_batch(model, batch, design)
        total = bp_cost.scaled(counts[Phase.WARMUP] + counts[Phase.BP])
        total = total + gp_cost.scaled(counts[Phase.GP])
        return total

    def baseline_training_cost(
        self,
        model: ModelSpec,
        epochs: int,
        batches_per_epoch: int,
        batch: int = 32,
    ) -> BatchCost:
        """Total plain-backprop training cost over a whole run."""
        return self.baseline_batch(model, batch).scaled(epochs * batches_per_epoch)

    def speedup(
        self,
        model: ModelSpec,
        design: AdaGPDesign,
        schedule: HeuristicSchedule | None = None,
        epochs: int = 90,
        batches_per_epoch: int = 100,
        batch: int = 32,
    ) -> float:
        """End-to-end training speedup of a design over the BP baseline."""
        schedule = schedule or HeuristicSchedule()
        base = self.baseline_training_cost(model, epochs, batches_per_epoch, batch)
        ada = self.training_cost(
            model, design, schedule, epochs, batches_per_epoch, batch
        )
        return base.cycles / ada.cycles

    # ------------------------------------------------------------------
    # Characterization (Fig 16).
    # ------------------------------------------------------------------
    def layer_characterization(
        self,
        model: ModelSpec,
        design: AdaGPDesign,
        batch: int = 32,
    ) -> list[LayerPhaseCost]:
        """Per-layer cycle breakdown across training phases.

        Only compute layers are listed (pool/act layers are negligible);
        the serialized (Efficient/LOW) composition is reported per layer
        since overlap makes per-layer attribution ambiguous for MAX.
        """
        results = []
        for spec in model.layers:
            if not spec.is_compute:
                continue
            fw = layer_forward_cycles(spec, batch, self.config)
            bw = layer_backward_cycles(spec, batch, self.config)
            a_fw = a_bw = load = 0
            if spec.is_predictable:
                pcost = self._predictor_cost(spec, design)
                a_fw, a_bw = pcost.alpha_fw, pcost.alpha_bw
                load = self._load_cycles(spec, design)
            results.append(
                LayerPhaseCost(
                    name=spec.name,
                    baseline=fw + bw,
                    warmup=fw + bw + a_fw + a_bw + 2 * load,
                    phase_bp=fw + bw + a_fw + a_bw + 2 * load,
                    phase_gp=fw + a_fw + load,
                )
            )
        return results


def _overlapped(main_cycles: list[int], aux_cycles: list[int]) -> int:
    """Critical path when layer i's aux work overlaps layer i+1 (MAX).

    The auxiliary (predictor) unit processes layer i's activations while
    the main array runs layer i+1; a long aux task stalls the next layer
    ("we must still determine the maximum between the original and
    predictor models", §6.3).
    """
    if len(main_cycles) != len(aux_cycles):
        raise ValueError("main and aux cycle lists must align")
    total = 0
    pending_aux = 0  # aux work issued by the previous layer
    for main, aux in zip(main_cycles, aux_cycles):
        total += max(main, pending_aux)
        pending_aux = aux
    total += pending_aux  # drain the last layer's aux work
    return total
