"""Analytical cycle models for systolic-array GEMMs under each dataflow.

The models follow the SCALE-Sim analytical formulation: a GEMM
``(M x K) @ (K x N)`` is tiled ("folded") onto the R x C array according
to which operand stays resident, and each fold pays an array-fill /
drain overhead in addition to its streaming cycles.

* **WS** — weights stationary: K maps to rows, M to columns; the N input
  vectors stream through.  Folds: ceil(K/R) * ceil(M/C).
* **OS** — outputs stationary: M maps to rows, N to columns; the K
  reduction streams.  Folds: ceil(M/R) * ceil(N/C).
* **IS** — inputs stationary: K maps to rows, N to columns; the M weight
  rows stream.  Folds: ceil(K/R) * ceil(N/C).
* **RS** — row stationary (Eyeriss): modelled for convolutions by the
  logical-PE mapping (filter rows x output rows spatially, everything
  else temporal).  Non-convolution GEMMs on an RS machine are costed
  with the WS formula (documented approximation — Eyeriss-class designs
  fall back to a GEMM mapping for FC layers).
"""

from __future__ import annotations

from .config import AcceleratorConfig, DataflowKind
from ..models.specs import LayerKind, LayerSpec


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def gemm_cycles_ws(m: int, k: int, n: int, rows: int, cols: int) -> int:
    """Weight-stationary GEMM cycles."""
    folds = _ceil_div(k, rows) * _ceil_div(m, cols)
    per_fold = rows + (n + rows + cols - 2)  # weight fill + stream + drain
    return folds * per_fold


def gemm_cycles_os(m: int, k: int, n: int, rows: int, cols: int) -> int:
    """Output-stationary GEMM cycles."""
    folds = _ceil_div(m, rows) * _ceil_div(n, cols)
    per_fold = k + rows + cols - 2 + rows  # stream + skew + output drain
    return folds * per_fold


def gemm_cycles_is(m: int, k: int, n: int, rows: int, cols: int) -> int:
    """Input-stationary GEMM cycles."""
    folds = _ceil_div(k, rows) * _ceil_div(n, cols)
    per_fold = rows + (m + rows + cols - 2)  # input fill + weight stream
    return folds * per_fold


def gemm_cycles(
    m: int, k: int, n: int, config: AcceleratorConfig,
    dataflow: DataflowKind | None = None,
) -> int:
    """Dispatch a GEMM to the configured dataflow's cycle model."""
    if m <= 0 or k <= 0 or n <= 0:
        raise ValueError(f"GEMM dims must be positive, got ({m}, {k}, {n})")
    dataflow = dataflow or config.dataflow
    if dataflow == DataflowKind.WEIGHT_STATIONARY:
        return gemm_cycles_ws(m, k, n, config.rows, config.cols)
    if dataflow == DataflowKind.OUTPUT_STATIONARY:
        return gemm_cycles_os(m, k, n, config.rows, config.cols)
    if dataflow == DataflowKind.INPUT_STATIONARY:
        return gemm_cycles_is(m, k, n, config.rows, config.cols)
    if dataflow == DataflowKind.ROW_STATIONARY:
        # RS has no generic GEMM mapping; callers cost convolutions with
        # rs_conv_cycles and fall back to WS for matrix layers.
        return gemm_cycles_ws(m, k, n, config.rows, config.cols)
    raise ValueError(f"unknown dataflow {dataflow}")


def rs_conv_cycles(spec: LayerSpec, batch: int, config: AcceleratorConfig) -> int:
    """Row-stationary cycles for a convolution layer (Eyeriss-style).

    The logical PE set is ``kernel_h x out_h`` (one PE per filter-row /
    output-row pair); each logical PE performs a 1-D convolution of
    ``kernel_w * out_w`` MACs, repeated temporally over input channels,
    filters and batch.  Folding the logical set onto the physical array
    serializes whole passes.
    """
    if spec.kind not in (LayerKind.CONV, LayerKind.DEPTHWISE_CONV):
        raise ValueError(f"rs_conv_cycles needs a conv layer, got {spec.kind}")
    logical = spec.kernel_h_eff * spec.out_h
    folds = _ceil_div(logical, config.num_pes)
    if spec.kind == LayerKind.DEPTHWISE_CONV:
        temporal = spec.kernel_w_eff * spec.out_w * spec.out_channels * batch
    else:
        temporal = (
            spec.kernel_w_eff
            * spec.out_w
            * spec.in_channels
            * spec.out_channels
            * batch
        )
    fill = config.rows + config.cols - 2
    return folds * temporal + fill


def layer_forward_cycles(
    spec: LayerSpec, batch: int, config: AcceleratorConfig
) -> int:
    """Forward-pass cycles of one layer.

    Pool / norm / activation layers execute on the post-processing SIMD
    path; they are costed at one cycle per output element / array width,
    which keeps them (correctly) negligible against GEMM layers.
    """
    if spec.is_compute:
        if (
            config.dataflow == DataflowKind.ROW_STATIONARY
            and spec.kind in (LayerKind.CONV, LayerKind.DEPTHWISE_CONV)
        ):
            return rs_conv_cycles(spec, batch, config)
        m, k, n = spec.gemm_dims(batch)
        return gemm_cycles(m, k, n, config)
    return _ceil_div(spec.output_size * batch, config.num_pes)


def layer_backward_cycles(
    spec: LayerSpec, batch: int, config: AcceleratorConfig
) -> int:
    """Backward-pass cycles: the dX GEMM plus the dW GEMM.

    For GEMM ``out = W(MxK) @ x(KxN)``: dX is a ``(KxM)@(MxN)`` product
    and dW is a ``(MxN)@(NxK)`` product, together roughly twice the
    forward work — reproducing the paper's "BW pass is twice as long as
    the FW pass" assumption (§3.7) from first principles.
    """
    if not spec.is_compute:
        return _ceil_div(spec.output_size * batch, config.num_pes)
    if (
        config.dataflow == DataflowKind.ROW_STATIONARY
        and spec.kind in (LayerKind.CONV, LayerKind.DEPTHWISE_CONV)
    ):
        # Transposed conv for dX + row-stationary correlation for dW.
        return 2 * rs_conv_cycles(spec, batch, config)
    m, k, n = spec.gemm_dims(batch)
    dx = gemm_cycles(k, m, n, config)  # gradient w.r.t. the streamed operand
    dw = gemm_cycles(m, n, k, config)  # gradient w.r.t. the resident operand
    return dx + dw


def ideal_macs_per_cycle(config: AcceleratorConfig) -> int:
    return config.num_pes


def utilization(
    spec: LayerSpec, batch: int, config: AcceleratorConfig
) -> float:
    """Achieved MACs/cycle over peak for the forward pass of a layer."""
    cycles = layer_forward_cycles(spec, batch, config)
    if cycles == 0:
        return 0.0
    return spec.macs_forward(batch) / (cycles * config.num_pes)
