"""Accelerator configuration (paper §4.1, §5.1).

The baseline is a weight-stationary systolic accelerator with 180 PEs
(the paper's FPGA/ASIC implementation), a global buffer, and off-chip
DRAM.  Data is 16-bit (2 bytes/element) throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class DataflowKind(str, Enum):
    """Systolic dataflows evaluated in the paper (§4.1, Figs 17-19)."""

    WEIGHT_STATIONARY = "WS"
    OUTPUT_STATIONARY = "OS"
    INPUT_STATIONARY = "IS"
    ROW_STATIONARY = "RS"


class AdaGPDesign(str, Enum):
    """The three hardware extensions of §4.2 (Fig 14)."""

    LOW = "ADA-GP-LOW"
    EFFICIENT = "ADA-GP-Efficient"
    MAX = "ADA-GP-MAX"


@dataclass(frozen=True)
class AcceleratorConfig:
    """Physical parameters of the simulated accelerator."""

    rows: int = 12
    cols: int = 15  # 12 x 15 = 180 PEs, the paper's array size
    dataflow: DataflowKind = DataflowKind.WEIGHT_STATIONARY
    bytes_per_element: int = 2
    dram_bandwidth_bytes_per_cycle: int = 16
    global_buffer_kb: int = 512
    frequency_mhz: float = 200.0

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("array dimensions must be positive")
        if self.dram_bandwidth_bytes_per_cycle <= 0:
            raise ValueError("DRAM bandwidth must be positive")

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    def with_dataflow(self, dataflow: DataflowKind) -> "AcceleratorConfig":
        """Copy of this config under a different dataflow."""
        return AcceleratorConfig(
            rows=self.rows,
            cols=self.cols,
            dataflow=dataflow,
            bytes_per_element=self.bytes_per_element,
            dram_bandwidth_bytes_per_cycle=self.dram_bandwidth_bytes_per_cycle,
            global_buffer_kb=self.global_buffer_kb,
            frequency_mhz=self.frequency_mhz,
        )


@dataclass(frozen=True)
class PredictorHardware:
    """Shape of the on-accelerator predictor (mirrors PredictorNetwork).

    ``alpha`` in the paper's timeline analysis (§3.7) is the latency this
    unit adds per layer; it is computed from these dimensions plus the
    per-layer gradient row size (the FC output is masked per layer,
    §3.6).
    """

    pool_size: int = 8
    conv_channels: int = 4
    conv_kernel: int = 3
    final_pool: int = 4
    fc_in: int = 4 * 4 * 4  # conv_channels * final_pool^2

    @property
    def conv_weight_params(self) -> int:
        return self.conv_channels * self.conv_kernel * self.conv_kernel

    def fc_weight_params(self, max_row: int) -> int:
        return self.fc_in * max_row

    def weight_bytes(self, max_row: int, bytes_per_element: int = 2) -> int:
        """Total predictor weight footprint (the Predictor Memory size)."""
        return (self.conv_weight_params + self.fc_weight_params(max_row)) * (
            bytes_per_element
        )

    def layer_weight_bytes(self, row: int, bytes_per_element: int = 2) -> int:
        """Weights a masked prediction for one layer actually touches."""
        return (self.conv_weight_params + self.fc_in * row) * bytes_per_element
