"""FPGA / ASIC resource, area, and power models (paper Tables 4 & 5).

The paper synthesized its designs with Vivado (Virtex-7) and Synopsys
Design Compiler; neither is available offline.  Instead, this module
carries a *component cost library* — per-block resource/power records
extracted from the paper's own synthesis results — and composes the four
designs (baseline, LOW, Efficient, MAX) out of those components:

    baseline   = PE array + global buffer + controller
    LOW        = baseline + ADA-GP control (tensor reorg / masking logic)
    Efficient  = LOW + predictor memory
    MAX        = Efficient + predictor PE array

Because component values are calibrated to the paper, the composed
tables match Table 4/5 by construction; what the model adds is the
ability to re-compose (e.g. scale the PE array for the §6.6.1
equal-power / equal-area studies, or cost a different predictor memory).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from .config import AdaGPDesign


# ----------------------------------------------------------------------
# FPGA (Virtex-7) model.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FpgaResources:
    """Table 4a row: Virtex-7 resource usage."""

    clb_luts: int = 0
    clb_registers: int = 0
    ramb36: int = 0
    ramb18: int = 0
    dsp48: int = 0

    def __add__(self, other: "FpgaResources") -> "FpgaResources":
        return FpgaResources(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def scaled(self, factor: float) -> "FpgaResources":
        return FpgaResources(
            **{f.name: int(round(getattr(self, f.name) * factor)) for f in fields(self)}
        )


@dataclass(frozen=True)
class FpgaPower:
    """Table 4b row: on-chip power (watts) by rail."""

    clocks: float = 0.0
    logic: float = 0.0
    signals: float = 0.0
    bram: float = 0.0
    dsp: float = 0.0
    static: float = 0.0
    io: float = 0.0

    def __add__(self, other: "FpgaPower") -> "FpgaPower":
        return FpgaPower(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    @property
    def total(self) -> float:
        return (
            self.clocks + self.logic + self.signals + self.bram + self.dsp
            + self.static + self.io
        )


# Component library: the baseline accelerator split into blocks, plus the
# three ADA-GP additions. Values calibrated to the paper's Table 4.
FPGA_PE_ARRAY = FpgaResources(clb_luts=302400, clb_registers=21600, dsp48=166)
FPGA_GLOBAL_BUFFER = FpgaResources(
    clb_luts=60000, clb_registers=6000, ramb36=1327, ramb18=514
)
FPGA_CONTROLLER = FpgaResources(clb_luts=109604, clb_registers=3802)
FPGA_ADAGP_CONTROL = FpgaResources(clb_luts=17282, clb_registers=454)
FPGA_PREDICTOR_MEMORY = FpgaResources(clb_luts=3885, clb_registers=60, ramb36=1080)
FPGA_PREDICTOR_PE_ARRAY = FpgaResources(clb_luts=909, clb_registers=5536, dsp48=80)

FPGA_BASE_POWER = FpgaPower(
    clocks=0.046, logic=0.420, signals=0.842, bram=0.244, dsp=0.009,
    static=2.032, io=0.119,
)
FPGA_ADAGP_CONTROL_POWER = FpgaPower(
    clocks=0.001, logic=0.026, signals=0.015, bram=-0.001, dsp=-0.008
)
FPGA_PREDICTOR_MEMORY_POWER = FpgaPower(
    clocks=0.005, logic=-0.025, signals=-0.005, bram=0.096, static=0.028
)
FPGA_PREDICTOR_PE_POWER = FpgaPower(
    clocks=0.003, logic=0.005, signals=0.005, static=-0.001
)


def fpga_resources(design: AdaGPDesign | None) -> FpgaResources:
    """Composed Virtex-7 resources for a design (None = baseline)."""
    total = FPGA_PE_ARRAY + FPGA_GLOBAL_BUFFER + FPGA_CONTROLLER
    if design is None:
        return total
    total = total + FPGA_ADAGP_CONTROL
    if design == AdaGPDesign.LOW:
        return total
    total = total + FPGA_PREDICTOR_MEMORY
    if design == AdaGPDesign.EFFICIENT:
        return total
    return total + FPGA_PREDICTOR_PE_ARRAY


def fpga_power(design: AdaGPDesign | None) -> FpgaPower:
    """Composed on-chip power for a design (None = baseline)."""
    total = FPGA_BASE_POWER
    if design is None:
        return total
    total = total + FPGA_ADAGP_CONTROL_POWER
    if design == AdaGPDesign.LOW:
        return total
    total = total + FPGA_PREDICTOR_MEMORY_POWER
    if design == AdaGPDesign.EFFICIENT:
        return total
    return total + FPGA_PREDICTOR_PE_POWER


# ----------------------------------------------------------------------
# ASIC model.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AsicArea:
    """Table 5a row: areas in library units (um^2)."""

    combinational: int = 0
    buf_inv: int = 0
    net_interconnect: int = 0
    total_cell: int = 0
    total: int = 0

    def __add__(self, other: "AsicArea") -> "AsicArea":
        return AsicArea(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )


@dataclass(frozen=True)
class AsicPower:
    """Table 5b row: power in microwatts by category."""

    internal: float = 0.0
    switching: float = 0.0
    leakage: float = 0.0

    def __add__(self, other: "AsicPower") -> "AsicPower":
        return AsicPower(
            internal=self.internal + other.internal,
            switching=self.switching + other.switching,
            leakage=self.leakage + other.leakage,
        )

    @property
    def total(self) -> float:
        return self.internal + self.switching + self.leakage


ASIC_BASELINE = AsicArea(
    combinational=2331250,
    buf_inv=272483,
    net_interconnect=436615,
    total_cell=2546076,
    total=2982691,
)
ASIC_ADAGP_CONTROL = AsicArea(
    combinational=43938, buf_inv=4778, net_interconnect=8756,
    total_cell=44507, total=53263,
)
ASIC_PREDICTOR_MEMORY = AsicArea(
    combinational=30693, buf_inv=-1478, net_interconnect=-5340,
    total_cell=32275, total=26936,
)
ASIC_PREDICTOR_PE_ARRAY = AsicArea(
    combinational=106176, buf_inv=11293, net_interconnect=20126,
    total_cell=148121, total=168246,
)

ASIC_BASE_POWER = AsicPower(internal=2.26e4, switching=1.72e3, leakage=1.99e5)
ASIC_ADAGP_CONTROL_POWER = AsicPower(internal=-1.0e2, switching=-5.0e1, leakage=3.0e3)
ASIC_PREDICTOR_MEMORY_POWER = AsicPower(
    internal=2.0e2, switching=1.3e2, leakage=-2.0e3
)
ASIC_PREDICTOR_PE_POWER = AsicPower(internal=5.3e3, switching=6.2e2, leakage=2.3e4)


def asic_area(design: AdaGPDesign | None) -> AsicArea:
    total = ASIC_BASELINE
    if design is None:
        return total
    total = total + ASIC_ADAGP_CONTROL
    if design == AdaGPDesign.LOW:
        return total
    total = total + ASIC_PREDICTOR_MEMORY
    if design == AdaGPDesign.EFFICIENT:
        return total
    return total + ASIC_PREDICTOR_PE_ARRAY


def asic_power(design: AdaGPDesign | None) -> AsicPower:
    total = ASIC_BASE_POWER
    if design is None:
        return total
    total = total + ASIC_ADAGP_CONTROL_POWER
    if design == AdaGPDesign.LOW:
        return total
    total = total + ASIC_PREDICTOR_MEMORY_POWER
    if design == AdaGPDesign.EFFICIENT:
        return total
    return total + ASIC_PREDICTOR_PE_POWER


def area_overhead(design: AdaGPDesign) -> float:
    """Fractional ASIC area increase over baseline (paper: 1.7/2.6/8.3%)."""
    return asic_area(design).total / asic_area(None).total - 1.0


def equal_resource_pe_bonus(design: AdaGPDesign, platform: str = "fpga") -> float:
    """Extra-PE fraction a baseline gets for the same power/area (§6.6.1).

    The paper grants the baseline 10% more PEs at ADA-GP-MAX's FPGA power
    and 11% more at its ASIC area.  For other designs the bonus scales
    with the design's own overhead relative to MAX.
    """
    if platform == "fpga":
        max_overhead = fpga_power(AdaGPDesign.MAX).total / fpga_power(None).total - 1
        design_overhead = fpga_power(design).total / fpga_power(None).total - 1
        max_bonus = 0.10
    elif platform == "asic":
        max_overhead = area_overhead(AdaGPDesign.MAX)
        design_overhead = area_overhead(design)
        max_bonus = 0.11
    else:
        raise ValueError(f"platform must be 'fpga' or 'asic', got {platform!r}")
    if max_overhead <= 0:
        return 0.0
    return max_bonus * max(design_overhead, 0.0) / max_overhead
