"""Memory-access energy model (paper §6.6.2, Fig 21).

The paper compares *memory-access* energy ("the presented results ...
only reflect the savings from reducing the number of memory read/write
operations") using CACTI-derived access energies.  CACTI is unavailable
offline, so this model uses representative per-byte access energies in
line with published 32nm-45nm numbers; they are calibration constants —
the claim under test is the *relative* saving (paper: 34% average), not
absolute joules.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.schedule import HeuristicSchedule
from ..models.specs import ModelSpec
from .adagp import AcceleratorModel
from .config import AdaGPDesign
from .memory import Traffic

# Per-byte access energies (picojoules). DRAM ~50 pJ/B and large on-chip
# SRAM ~1 pJ/B are mid-range literature values for 16-bit datapaths.
DRAM_PJ_PER_BYTE: float = 50.0
SRAM_PJ_PER_BYTE: float = 1.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules split by memory level."""

    dram_joules: float
    sram_joules: float

    @property
    def total_joules(self) -> float:
        return self.dram_joules + self.sram_joules


def traffic_energy(
    traffic: Traffic,
    dram_pj_per_byte: float = DRAM_PJ_PER_BYTE,
    sram_pj_per_byte: float = SRAM_PJ_PER_BYTE,
) -> EnergyBreakdown:
    """Convert byte counts into joules."""
    return EnergyBreakdown(
        dram_joules=traffic.dram_total * dram_pj_per_byte * 1e-12,
        sram_joules=traffic.sram * sram_pj_per_byte * 1e-12,
    )


def training_energy(
    model: ModelSpec,
    design: AdaGPDesign | None,
    accelerator: AcceleratorModel | None = None,
    schedule: HeuristicSchedule | None = None,
    epochs: int = 90,
    batches_per_epoch: int = 1000,
    batch: int = 32,
) -> EnergyBreakdown:
    """Memory-access energy of a full training run.

    ``design=None`` gives the BP baseline; otherwise the selected ADA-GP
    design under the phase schedule.
    """
    accelerator = accelerator or AcceleratorModel()
    if design is None:
        cost = accelerator.baseline_training_cost(
            model, epochs, batches_per_epoch, batch
        )
    else:
        schedule = schedule or HeuristicSchedule()
        cost = accelerator.training_cost(
            model, design, schedule, epochs, batches_per_epoch, batch
        )
    return traffic_energy(cost.traffic)


def energy_saving(
    model: ModelSpec,
    design: AdaGPDesign,
    accelerator: AcceleratorModel | None = None,
    **kwargs,
) -> float:
    """Fractional memory-energy saving of a design vs. the BP baseline."""
    accelerator = accelerator or AcceleratorModel()
    base = training_energy(model, None, accelerator, **kwargs).total_joules
    ada = training_energy(model, design, accelerator, **kwargs).total_joules
    return 1.0 - ada / base
