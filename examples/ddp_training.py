"""Data-parallel ADA-GP training with AdaComp gradient compression.

The tour of ``repro.dist`` (DESIGN.md §12):

1. build the CIFAR10-like dataset and a VGG13-mini,
2. train it as ``ddp_engine(workers=2, inner="bp")`` three ways —
   identity codec (dense gradients, the parity baseline), AdaComp at
   the paper's T=256 sweet spot, and AdaComp at a compress-hard
   T=1024 — reporting accuracy, gradient bytes actually shipped
   (measured wire accounting, not an estimate) and the compression
   ratio; pure-BP is where a gradient codec works every batch, and at
   this scale AdaComp's sparsification typically *helps* accuracy,
3. then show the phase-aware part with ``inner="adagp"``: per-epoch
   comm drops to *zero gradient bytes* on GP batches — the ADA-GP
   phase structure is itself a communication optimization, orthogonal
   to and stacking with the codec.

``--transport process`` runs real worker processes over pipes; the
default ``local`` transport is in-process (bitwise-identical results —
that equivalence is an enforced test in ``tests/dist/``) and friendlier
to small machines.

Run:  python examples/ddp_training.py [--transport local|process]
      [--workers 2] [--epochs 12]
"""

import argparse

import numpy as np

from repro.core import HeuristicSchedule
from repro.data import preset_split
from repro.dist import AdaCompCodec, ddp_engine, dp_strategy, shutdown
from repro.models import build_mini
from repro.nn.losses import CrossEntropyLoss, accuracy


def train_once(split, codec, label, args, inner="bp"):
    model = build_mini("VGG13", 10, rng=np.random.default_rng(1))
    extra = (
        {"schedule": HeuristicSchedule(warmup_epochs=4, ladder=((4, (3, 1)),))}
        if inner == "adagp"
        else {}
    )
    engine = ddp_engine(
        model,
        CrossEntropyLoss(),
        workers=args.workers,
        codec=codec,
        transport=args.transport,
        inner=inner,
        lr=0.02,
        metric_fn=accuracy,
        **extra,
    )
    history = engine.fit(
        lambda: split.train.batches(32, rng=np.random.default_rng(2)),
        lambda: split.val.batches(128, shuffle=False),
        args.epochs,
    )
    comm = dp_strategy(engine).comm
    totals = comm.totals()
    ratio = comm.compression_ratio()
    epochs = comm.epochs
    shutdown(engine)
    print(
        f"  {label:16s} best acc {max(history.val_metric):5.1f}%   "
        f"grad bytes {totals['grad_wire_bytes'] / 1e6:8.2f} MB   "
        f"ratio {ratio:6.1f}x"
    )
    return epochs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--transport",
        choices=("local", "process"),
        default="local",
        help="in-process ranks (local) or real worker processes",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--epochs", type=int, default=12)
    args = parser.parse_args()

    split = preset_split("Cifar10", num_train=256, num_val=128, seed=0)

    print(
        f"VGG13-mini / CIFAR10-mini, {args.workers} workers "
        f"({args.transport} transport), {args.epochs} epochs\n"
        "codec comparison (pure-BP data parallel):"
    )
    train_once(split, "identity", "identity", args)
    train_once(split, AdaCompCodec(bin_size=256), "adacomp T=256", args)
    train_once(split, AdaCompCodec(bin_size=1024), "adacomp T=1024", args)

    print("\nphase-aware comm (ADA-GP, 3:1 GP:BP after warm-up; identity codec):")
    epochs = train_once(split, "identity", "adagp identity", args, inner="adagp")
    print("  epoch  bp-batches  gp-batches  grad-MB    sync-MB")
    for epoch in sorted(epochs):
        row = epochs[epoch]
        print(
            f"  {epoch:5d}  {row['bp_batches']:10d}  {row['gp_batches']:10d}"
            f"  {row['grad_wire_bytes'] / 1e6:8.3f}   {row['sync_bytes'] / 1e6:7.2f}"
        )
    print(
        "\nGP batches apply locally predicted gradients — no backprop"
        "\ngradient exists, so nothing crosses the wire; state re-syncs"
        "\nonly at BP<->GP phase boundaries (DESIGN.md §12)."
    )


if __name__ == "__main__":
    main()
