"""Regenerate the full Table 1 (13 models x 3 datasets, BP vs ADA-GP).

This is the complete accuracy sweep at mini/synthetic scale; it takes
~10 minutes in NumPy.  For a quick look use
``python -m repro.experiments.runner --quick``.

Run:  python examples/table1_accuracy.py
"""

from repro.experiments import table1_accuracy


def main() -> None:
    rows = table1_accuracy.run_table1()
    print(table1_accuracy.format_table1(rows))
    deltas = [row.delta for row in rows]
    mean_delta = sum(deltas) / len(deltas)
    print(
        f"\nmean accuracy delta (ADA-GP - BP): {mean_delta:+.2f}% "
        "(paper: +0.75% CIFAR10, +0.88% CIFAR100, -0.30% ImageNet)"
    )


if __name__ == "__main__":
    main()
