"""Schedule search: map ADA-GP's accuracy-vs-GP-share frontier.

§3.5 fixes a heuristic phase ladder "for simplicity"; `repro.tune`
searches the general controller instead.  This example runs a 14-trial
search on CIFAR10-mini — the paper's heuristic ladder, an aggressive
fixed ladder, and a 12-point grid over the MAPE-adaptive controller
(threshold scale x ratio aggressiveness x warm-up length) — then prints
every trial, the Pareto frontier, and whether a searched adaptive
config dominates the paper ladder (equal-or-better accuracy at higher
GP share, i.e. more backward passes skipped for free).

It supersedes the hand-rolled three-row loop this repo used to carry in
``examples/adaptive_vs_heuristic.py``: trials run through the tune
subsystem's process-pool runner with crash isolation and a resume
journal, so the search can be interrupted and picked back up.

Run:  python examples/schedule_search.py [--model VGG13] [--epochs 20]
          [--workers N] [--journal search.jsonl]
"""

import argparse

from repro.tune import (
    Grid,
    GridSearch,
    SearchRunner,
    SearchSpace,
    TrialSpec,
    frontier_table,
    pareto_front,
    render_frontier,
)
from repro.core import HeuristicSchedule

#: AdaptiveSchedule ratio menus: the paper's ladder ratios, and an
#: aggressive menu that skips more backward passes at every quality tier.
PAPER_RATIOS = ((4, 1), (3, 1), (2, 1), (1, 1))
AGGRESSIVE_RATIOS = ((8, 1), (6, 1), (4, 1), (2, 1))


def baseline_specs(base: dict, epochs: int) -> list[TrialSpec]:
    """The two fixed-ladder reference points the search must beat."""
    paper = HeuristicSchedule(
        warmup_epochs=6, ladder=((3, (4, 1)), (3, (3, 1)), (3, (2, 1)))
    )
    aggressive = HeuristicSchedule(warmup_epochs=2, ladder=(), final_ratio=(9, 1))
    return [
        TrialSpec(trial_id="paper-ladder", schedule=paper.to_config(),
                  epochs=epochs, **base),
        TrialSpec(trial_id="aggressive-9to1", schedule=aggressive.to_config(),
                  epochs=epochs, **base),
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--model", default="VGG13")
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--journal", default=None,
                        help="JSONL journal path (enables interrupt/resume)")
    args = parser.parse_args()

    base = dict(
        model=args.model, dataset="Cifar10", num_train=256, num_val=128,
        batch_size=32, lr=0.02,
    )
    space = SearchSpace({
        "kind": "adaptive",
        "threshold_scale": Grid(1.0, 4.0, 16.0),
        "ratios": Grid(PAPER_RATIOS, AGGRESSIVE_RATIOS),
        "warmup_epochs": Grid(4, 6),
    })
    specs = baseline_specs(base, args.epochs) + GridSearch(
        space, prefix="adaptive-", epochs=args.epochs, **base
    ).specs()
    print(f"{len(specs)} trials ({args.model}-mini / CIFAR10-mini, "
          f"{args.epochs} epochs each, {args.workers} worker(s))")

    runner = SearchRunner(workers=args.workers, journal=args.journal)
    results = runner.run(specs)
    if args.journal:
        print(f"ran {runner.executed} trials, "
              f"{len(results) - runner.executed} served from {args.journal}")

    front = pareto_front(results)
    print()
    print(frontier_table(
        results, front,
        title=f"Schedule search on {args.model}-mini / CIFAR10-mini",
    ))
    print()
    print(render_frontier(results, front))

    paper = next(r for r in results if r.trial_id == "paper-ladder")
    dominators = [
        r for r in results
        if r.status == "ok" and r.spec["schedule"]["kind"] == "adaptive"
        and r.best_metric >= paper.best_metric and r.gp_share > paper.gp_share
    ]
    print()
    print(f"paper heuristic ladder: {paper.best_metric:.1f}% best accuracy "
          f"at {paper.gp_share:.0%} GP share ({paper.cycle_speedup:.2f}x cycles)")
    if dominators:
        best = max(dominators, key=lambda r: (r.gp_share, r.best_metric))
        print(f"dominated by {len(dominators)} searched adaptive config(s); "
              f"e.g. {best.trial_id}: {best.best_metric:.1f}% at "
              f"{best.gp_share:.0%} GP share ({best.cycle_speedup:.2f}x)")
    else:
        print("no searched adaptive config dominates the paper ladder here")


if __name__ == "__main__":
    main()
