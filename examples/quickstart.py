"""Quickstart: train one model with backprop vs ADA-GP and compare.

This is the smallest end-to-end tour of the library:

1. build a synthetic CIFAR10-like dataset,
2. train a VGG13-mini twice through the unified ``TrainingEngine`` —
   plain backprop (the paper's baseline) and ADA-GP (warm-up, then
   alternating Phase BP / Phase GP), with a ``ThroughputTimer`` callback
   measuring software batches/sec per phase,
3. report the accuracy comparison (paper Table 1's claim) plus how many
   backward passes ADA-GP skipped, and
4. estimate the wall-clock effect on the paper's 180-PE accelerator.

Pass ``--backend fused`` to run everything on the fused BLAS compute
backend (DESIGN.md §7) instead of the reference NumPy ops — same
numbers within float32 tolerance, measurably faster batches.  Pass
``--backend native`` for the compiled C kernels where the extension
builds (falls back to ``fused`` with a warning otherwise).

Run:  python examples/quickstart.py [--backend numpy|fused|native]
"""

import argparse

import numpy as np

from repro import nn
from repro.accel import AcceleratorModel, AdaGPDesign
from repro.core import (
    HeuristicSchedule,
    Phase,
    ThroughputTimer,
    adagp_engine,
    bp_engine,
)
from repro.data import preset_split
from repro.models import build_mini, spec_for
from repro.nn.losses import CrossEntropyLoss, accuracy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=nn.list_backends(),
        default="numpy",
        help="compute backend for every engine in this script",
    )
    args = parser.parse_args()
    backend = args.backend
    if backend == "native" and not nn.native_available():
        print(
            "warning: native extension unavailable on this machine "
            "(no C compiler or build failed); falling back to 'fused'"
        )
        backend = "fused"
    nn.use_backend(backend)
    print(f"(compute backend: {nn.current_backend().name})")

    split = preset_split("Cifar10", num_train=256, num_val=128, seed=0)
    epochs = 20

    print("== Training VGG13-mini with plain backprop (baseline) ==")
    bp_model = build_mini("VGG13", 10, rng=np.random.default_rng(1))
    bp_history = bp_engine(
        bp_model, CrossEntropyLoss(), lr=0.02, metric_fn=accuracy
    ).fit(
        lambda: split.train.batches(32, rng=np.random.default_rng(2)),
        lambda: split.val.batches(64, shuffle=False),
        epochs=epochs,
    )
    print(f"BP best accuracy: {bp_history.best_metric:.1f}%")

    print("\n== Training the same model with ADA-GP ==")
    # Compressed version of the paper's schedule (§3.5): warm-up, then a
    # 4:1 -> 3:1 -> 2:1 -> 1:1 GP:BP ratio ladder.
    schedule = HeuristicSchedule(
        warmup_epochs=6, ladder=((3, (4, 1)), (3, (3, 1)), (3, (2, 1)))
    )
    timer = ThroughputTimer()
    ada_model = build_mini("VGG13", 10, rng=np.random.default_rng(1))
    ada_history = adagp_engine(
        ada_model, CrossEntropyLoss(), lr=0.02, metric_fn=accuracy,
        schedule=schedule, callbacks=(timer,),
    ).fit(
        lambda: split.train.batches(32, rng=np.random.default_rng(2)),
        lambda: split.val.batches(64, shuffle=False),
        epochs=epochs,
    )
    skipped = sum(ada_history.gp_batches)
    total = skipped + sum(ada_history.bp_batches)
    print(f"ADA-GP best accuracy: {ada_history.best_metric:.1f}%")
    print(
        f"Backward passes skipped: {skipped}/{total} batches "
        f"({ada_history.gp_share:.0%})"
    )
    gp_rate = timer.batches_per_second(Phase.GP)
    bp_rate = timer.batches_per_second(Phase.BP)
    print(
        f"Measured throughput: {gp_rate:.1f} GP vs {bp_rate:.1f} BP batches/s "
        f"({gp_rate / bp_rate:.2f}x in NumPy, no accelerator)"
    )

    print("\n== What that buys on the paper's accelerator ==")
    spec = spec_for("VGG13", "Cifar10")
    accelerator = AcceleratorModel()
    for design in AdaGPDesign:
        speedup = accelerator.speedup(
            spec, design, HeuristicSchedule(), epochs=90, batches_per_epoch=50
        )
        print(f"{design.value:18s} training speedup over baseline: {speedup:.2f}x")


if __name__ == "__main__":
    main()
