"""Trace an ADA-GP run: Chrome trace for Perfetto + phase×op report.

The end-to-end tour of ``repro.obs`` (DESIGN.md §14):

1. train a ResNet50-mini with ADA-GP, with both observability
   callbacks attached — ``TracingCallback`` records phase-tagged
   fit/epoch/batch spans, ``MetricsCallback`` bridges the existing
   ledgers (``ThroughputTimer``, workspace pool, fold caches) into the
   metrics registry at epoch boundaries,
2. wrap the compute backend in a ``ProfilingBackend`` so every hot op
   (conv, linear, unfold, …) is timed and attributed to the phase it
   ran under — the software twin of the paper's Fig 15/16 cycle
   characterization,
3. print the per-phase time totals and the phase×op breakdown, and
4. write the trace as Chrome ``trace_event`` JSON — open it at
   https://ui.perfetto.dev (or chrome://tracing) to scrub through
   every batch on a timeline — plus a JSONL trace and a metrics
   snapshot for the offline CLI:

       python -m repro.obs report out.trace.jsonl --metrics out.metrics.json

Run:  python examples/trace_training.py [--trace out.json] [--epochs N]
"""

import argparse
import pathlib

import numpy as np

from repro import obs
from repro.core import HeuristicSchedule, ThroughputTimer, adagp_engine
from repro.data import preset_split
from repro.models import build_mini
from repro.nn.backend import FusedBackend
from repro.nn.losses import CrossEntropyLoss, accuracy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace",
        default="out.json",
        metavar="OUT.json",
        help="write the Chrome trace_event file here (default: out.json)",
    )
    parser.add_argument("--epochs", type=int, default=8)
    args = parser.parse_args()

    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    backend = obs.ProfilingBackend(
        FusedBackend(), registry=registry, tracer=tracer
    )
    timer = ThroughputTimer()

    split = preset_split("Cifar10", num_train=256, num_val=128, seed=0)
    model = build_mini("ResNet50", 10, rng=np.random.default_rng(1))
    schedule = HeuristicSchedule(warmup_epochs=2, ladder=((3, (3, 1)), (3, (2, 1))))

    print("== Training ResNet50-mini with ADA-GP, tracing on ==")
    engine = adagp_engine(
        model,
        CrossEntropyLoss(),
        lr=0.02,
        metric_fn=accuracy,
        schedule=schedule,
        backend=backend,
        callbacks=[
            timer,
            obs.TracingCallback(tracer),
            obs.MetricsCallback(registry),
        ],
    )
    history = engine.fit(
        lambda: split.train.batches(32, rng=np.random.default_rng(2)),
        lambda: split.val.batches(64, shuffle=False),
        epochs=args.epochs,
    )
    print(
        f"best accuracy {history.best_metric:.1f}%, "
        f"{sum(history.gp_batches)} backward passes skipped "
        f"({history.gp_share:.0%})"
    )

    print("\n== Where the time went ==")
    print(obs.report_text(tracer.spans, registry.snapshot()))

    out = pathlib.Path(args.trace)
    tracer.to_chrome(out)
    jsonl = out.with_suffix(".trace.jsonl")
    tracer.to_jsonl(jsonl)
    metrics = out.with_suffix(".metrics.json")
    obs.dump_snapshot(registry.snapshot(), metrics)
    print(f"\nwrote {out} ({len(tracer.spans)} spans)")
    print(f"  open it at https://ui.perfetto.dev (or chrome://tracing)")
    print(f"wrote {jsonl} and {metrics}; re-render the report offline with")
    print(f"  python -m repro.obs report {jsonl} --metrics {metrics}")


if __name__ == "__main__":
    main()
