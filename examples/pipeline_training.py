"""Measured pipeline-parallel ADA-GP training (Fig 20 as measurement).

Where ``examples/pipeline_parallel_training.py`` renders the *analytical*
step grids, this example actually executes a stage-partitioned ResNet
mini on the event-driven micro-batch executor: 4 virtual devices,
GPipe ordering, Phase-GP streams filling the bubbles, per-slot durations
measured from real NumPy compute.

Run:  PYTHONPATH=src python examples/pipeline_training.py
"""

import numpy as np

from repro.core import HeuristicSchedule, Phase, pipeline_adagp_engine
from repro.experiments.fig20_pipeline import (
    format_fig20_measured,
    run_fig20_measured,
)
from repro.models import build_mini
from repro.nn.losses import CrossEntropyLoss, accuracy
from repro.pipeline import PipelineKind, render_timeline

NUM_STAGES = 4
MICRO_BATCHES = 4
BATCH = 32


def render(timeline, num_devices: int, title: str, width: int = 76) -> None:
    """Print a measured timeline, scaled to ``width`` cells."""
    print(title)
    print(render_timeline(timeline, num_devices, width=width, label_by="batch"))
    print(f"  measured makespan: {timeline.makespan * 1e3:.1f} ms "
          "(digits = FW batch id, letters = BW)")
    print()


def main() -> None:
    model = build_mini("ResNet50", 10, rng=np.random.default_rng(0))
    engine = pipeline_adagp_engine(
        model,
        CrossEntropyLoss(),
        num_stages=NUM_STAGES,
        micro_batches=MICRO_BATCHES,
        kind=PipelineKind.GPIPE.value,
        schedule=HeuristicSchedule(warmup_epochs=1, ladder=((2, (4, 1)),)),
        metric_fn=accuracy,
        plateau_scheduler=False,
    )

    def batches():
        rng = np.random.default_rng(7)
        for _ in range(5):
            x = rng.standard_normal((BATCH, 3, 16, 16)).astype(np.float32)
            yield x, rng.integers(0, 10, BATCH)

    history = engine.fit(batches, batches, epochs=3)
    executor = engine.strategies[Phase.GP].executor
    executor.validate()
    print("Stage plan (accel cost model):", executor.plan.boundaries,
          f"balance={executor.plan.balance:.2f}")
    print("Train loss per epoch:", [f"{v:.3f}" for v in history.train_loss])
    print("BP/GP batches per epoch:",
          list(zip(history.bp_batches, history.gp_batches)))
    print()
    render(
        executor.timeline,
        NUM_STAGES,
        "Measured schedule, all epochs (warm-up BP batches, then 4:1 GP:BP):",
    )

    print(format_fig20_measured(run_fig20_measured(
        PipelineKind.GPIPE, models=("ResNet50",), batch=BATCH,
    )))


if __name__ == "__main__":
    main()
