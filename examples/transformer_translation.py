"""Train the seq2seq Transformer with ADA-GP on synthetic translation.

The paper's §6.4 workload: a Transformer with 3 encoder and 3 decoder
layers on a translation task (Multi30k stands in for our synthetic
reverse+shift corpus).  Trains with BP and with ADA-GP, reports token
accuracy and BLEU, and shows a few decoded sentences.

Run:  python examples/transformer_translation.py  (takes a few minutes)
"""

import numpy as np

from repro.core import HeuristicSchedule, adagp_engine, bp_engine
from repro.data.translation import (
    BOS_ID,
    EOS_ID,
    PAD_ID,
    synthetic_translation,
)
from repro.experiments.table2_transformer import (
    _evaluate_bleu,
    _seq_batches,
    _token_accuracy,
)
from repro.models import Seq2SeqTransformer
from repro.nn.losses import CrossEntropyLoss
from repro.nn.optim import Adam, SGD


def train(use_adagp: bool, train_set, val_set, epochs: int):
    model = Seq2SeqTransformer(
        train_set.src_vocab, train_set.tgt_vocab,
        d_model=32, num_heads=2, d_ff=64, rng=np.random.default_rng(1),
    )
    loss = CrossEntropyLoss(ignore_index=PAD_ID)
    optimizer = Adam(model.parameters(), lr=2e-3)
    if use_adagp:
        engine = adagp_engine(
            model, loss, optimizer=optimizer,
            gp_optimizer=SGD(model.parameters(), lr=2e-3, momentum=0.9),
            metric_fn=_token_accuracy, plateau_scheduler=False,
            schedule=HeuristicSchedule(warmup_epochs=10),
        )
    else:
        engine = bp_engine(
            model, loss, optimizer=optimizer, metric_fn=_token_accuracy,
            plateau_scheduler=False,
        )
    history = engine.fit(
        lambda: _seq_batches(train_set, 32, 2),
        lambda: _seq_batches(val_set, 64, 3),
        epochs=epochs,
    )
    return model, history


def main() -> None:
    train_set = synthetic_translation(
        num_sentences=768, content_vocab=12, max_len=6, seed=0
    )
    val_set = synthetic_translation(
        num_sentences=64, content_vocab=12, max_len=6, seed=100
    )

    print("Training baseline (BP, Adam)...")
    bp_model, bp_hist = train(False, train_set, val_set, epochs=60)
    print(
        f"BP      : token acc {bp_hist.val_metric[-1]:.1f}%  "
        f"BLEU {_evaluate_bleu(bp_model, val_set):.1f}"
    )

    print("Training ADA-GP (more epochs; see Table 2 notes)...")
    ada_model, ada_hist = train(True, train_set, val_set, epochs=110)
    print(
        f"ADA-GP  : token acc {ada_hist.val_metric[-1]:.1f}%  "
        f"BLEU {_evaluate_bleu(ada_model, val_set):.1f}"
    )

    print("\nSample decodes (ADA-GP model):")
    decoded = ada_model.greedy_decode(val_set.src[:3], 10, BOS_ID, EOS_ID)
    for src, out, ref in zip(val_set.src[:3], decoded, val_set.tgt[:3]):
        src_tokens = [int(t) for t in src if t != PAD_ID]
        out_tokens = [int(t) for t in out[1:] if t not in (EOS_ID, PAD_ID)]
        ref_tokens = [int(t) for t in ref if t not in (BOS_ID, EOS_ID, PAD_ID)]
        print(f"  src {src_tokens} -> {out_tokens} (ref {ref_tokens})")


if __name__ == "__main__":
    main()
