"""Train the YOLO-style grid detector with ADA-GP on synthetic scenes.

The paper's §6.4 detection workload (PascalVOC stands in for synthetic
square/cross/disc scenes).  Trains BP and ADA-GP detectors, reports
class accuracy and mAP@0.5, and prints the detections for one scene.

Run:  python examples/object_detection.py
"""

import numpy as np

from repro.core import HeuristicSchedule, adagp_engine, bp_engine
from repro.core.metrics import detection_class_accuracy, mean_average_precision
from repro.data import CLASS_NAMES, synthetic_detection
from repro.models import MiniYolo, YoloLoss, decode_predictions


def train(use_adagp: bool, train_set, val_set, epochs: int = 60):
    model = MiniYolo(
        num_classes=train_set.num_classes, grid_size=train_set.grid_size,
        rng=np.random.default_rng(1),
    )
    loss = YoloLoss()
    if use_adagp:
        engine = adagp_engine(
            model, loss, lr=0.01,
            schedule=HeuristicSchedule(
                warmup_epochs=14, ladder=((6, (4, 1)), (6, (3, 1)), (6, (2, 1)))
            ),
        )
    else:
        engine = bp_engine(model, loss, lr=0.01)
    engine.fit(
        lambda: train_set.batches(16, shuffle=True, seed=2),
        lambda: val_set.batches(64, shuffle=False),
        epochs=epochs,
    )
    return model


def evaluate(tag: str, model, val_set) -> None:
    model.eval()
    predictions = model(val_set.images)
    model.train()
    class_acc = detection_class_accuracy(predictions, val_set.grid_targets)
    detections = decode_predictions(predictions, conf_threshold=0.5)
    test_map = mean_average_precision(
        detections, val_set.boxes, num_classes=val_set.num_classes
    )
    print(f"{tag:8s}: class acc {class_acc:.1f}%  mAP@0.5 {test_map:.3f}")


def main() -> None:
    # Box regression is step-hungry: 320 scenes x 60 epochs at batch 16
    # (the Table 3 configuration) reaches ~0.5 mAP@0.5; shrink for a
    # quicker look at the pipeline.
    train_set = synthetic_detection(num_images=320, seed=0)
    val_set = synthetic_detection(num_images=64, seed=100)

    print("Training baseline detector (BP)...")
    bp_model = train(False, train_set, val_set)
    evaluate("BP", bp_model, val_set)

    print("Training ADA-GP detector...")
    ada_model = train(True, train_set, val_set)
    evaluate("ADA-GP", ada_model, val_set)

    print("\nDetections on one validation scene (ADA-GP model):")
    ada_model.eval()
    predictions = ada_model(val_set.images[:1])
    for class_id, conf, x1, y1, x2, y2 in decode_predictions(
        predictions, conf_threshold=0.4
    )[0]:
        print(
            f"  {CLASS_NAMES[class_id]:6s} conf={conf:.2f} "
            f"box=({x1:.2f}, {y1:.2f}, {x2:.2f}, {y2:.2f})"
        )
    print("Ground truth:")
    for class_id, x1, y1, x2, y2 in val_set.boxes[0]:
        print(
            f"  {CLASS_NAMES[class_id]:6s}           "
            f"box=({x1:.2f}, {y1:.2f}, {x2:.2f}, {y2:.2f})"
        )


if __name__ == "__main__":
    main()
