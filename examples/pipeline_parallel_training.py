"""Multi-device pipeline training with ADA-GP (paper §3.8 / §6.5).

Renders the actual step grids of GPipe, DAPPLE and Chimera on 4 devices
(the paper's Figs 10-12), shows how a Phase-GP stream fills every bubble,
and sweeps the Fig 20 speedups for a few models.

Run:  python examples/pipeline_parallel_training.py
"""

from repro.accel import AdaGPDesign
from repro.experiments.formats import format_table
from repro.models import spec_for
from repro.pipeline import (
    PipelineConfig,
    PipelineKind,
    pipeline_speedup,
    render_timeline,
    simulate_chimera,
    simulate_dapple,
    simulate_gp_stream,
    simulate_gp_then_bp,
    simulate_gpipe,
)


def render(timeline, num_devices: int, title: str) -> None:
    """Print a simulated step grid: one cell per step, one row per device."""
    print(title)
    print(render_timeline(timeline, num_devices))
    print(f"  makespan: {timeline.makespan:.0f} steps "
          "(digits = FW micro-batch, letters = BW)")
    print()


def main() -> None:
    config = PipelineConfig(num_stages=4, micro_batches=4)

    render(simulate_gpipe(config), 4, "GPipe, one batch (paper: 21 steps)")
    render(simulate_dapple(config), 4, "DAPPLE / 1F1B, one batch (paper: 21 steps)")
    render(simulate_chimera(config), 4, "Chimera, one batch (paper: 16 steps)")
    render(
        simulate_gp_stream(config, 3), 4,
        "ADA-GP Phase GP: three batches stream with no bubbles (Fig 10b)",
    )
    render(
        simulate_gp_then_bp(PipelineKind.GPIPE, config), 4,
        "GP batch followed by BP batch on GPipe (paper: 25 steps, Fig 10c)",
    )

    rows = []
    for name in ("ResNet50", "VGG16", "DenseNet201", "MobileNet-V2"):
        spec = spec_for(name, "ImageNet")
        cells = [name]
        for kind in PipelineKind:
            cells.append(
                pipeline_speedup(
                    spec, kind, AdaGPDesign.MAX, epochs=90, batches_per_epoch=20
                )
            )
        rows.append(cells)
    print(
        format_table(
            ["Model", "over GPipe", "over DAPPLE", "over Chimera"],
            rows,
            title="ADA-GP-MAX speedup on 4 devices (Fig 20 excerpt)",
        )
    )


if __name__ == "__main__":
    main()
