"""Ablation: the paper's fixed ratio ladder vs the adaptive controller.

§3.5 describes ADA-GP's adaptivity in general terms and then fixes a
simple heuristic ladder "for simplicity".  This example trains the same
model under (a) the paper's heuristic ladder, (b) the MAPE-driven
:class:`~repro.core.AdaptiveSchedule`, and (c) an aggressive always-GP
schedule, showing the accuracy/GP-share trade-off each one strikes.

Run:  python examples/adaptive_vs_heuristic.py
"""

import numpy as np

from repro.core import (
    AdaptiveSchedule,
    HeuristicSchedule,
    adagp_engine,
)
from repro.data import preset_split
from repro.experiments.formats import format_table
from repro.models import build_mini
from repro.nn.losses import CrossEntropyLoss, accuracy


def run(schedule, split, epochs: int = 20):
    model = build_mini("VGG13", 10, rng=np.random.default_rng(1))
    engine = adagp_engine(
        model, CrossEntropyLoss(), lr=0.02, metric_fn=accuracy,
        schedule=schedule,
    )
    history = engine.fit(
        lambda: split.train.batches(32, rng=np.random.default_rng(2)),
        lambda: split.val.batches(64, shuffle=False),
        epochs=epochs,
    )
    gp = sum(history.gp_batches)
    total = gp + sum(history.bp_batches)
    return history.best_metric, gp / total


def main() -> None:
    split = preset_split("Cifar10", num_train=256, num_val=128, seed=0)
    rows = []

    heuristic = HeuristicSchedule(
        warmup_epochs=6, ladder=((3, (4, 1)), (3, (3, 1)), (3, (2, 1)))
    )
    acc, gp_share = run(heuristic, split)
    rows.append(["paper heuristic ladder", acc, f"{gp_share:.0%}"])

    adaptive = AdaptiveSchedule(warmup_epochs=6)
    acc, gp_share = run(adaptive, split)
    rows.append(["MAPE-adaptive (§3.5 general)", acc, f"{gp_share:.0%}"])

    aggressive = HeuristicSchedule(warmup_epochs=2, ladder=(), final_ratio=(9, 1))
    acc, gp_share = run(aggressive, split)
    rows.append(["aggressive 9:1 after 2 epochs", acc, f"{gp_share:.0%}"])

    print(
        format_table(
            ["Schedule", "Best accuracy (%)", "GP batch share"],
            rows,
            title="Schedule ablation on VGG13-mini / CIFAR10-like",
        )
    )


if __name__ == "__main__":
    main()
