"""Ablation: the paper's fixed ratio ladder vs the adaptive controller.

§3.5 describes ADA-GP's adaptivity in general terms and then fixes a
simple heuristic ladder "for simplicity".  This example trains the same
model under (a) the paper's heuristic ladder, (b) the MAPE-driven
:class:`~repro.core.AdaptiveSchedule`, and (c) an aggressive always-GP
schedule, showing the accuracy/GP-share trade-off each one strikes.

The three runs execute as :mod:`repro.tune` trials — the same specs a
search would journal — so this is the minimal entry point to the
subsystem; ``examples/schedule_search.py`` is the full search that
supersedes the hand-rolled loop this file used to carry.

Run:  python examples/adaptive_vs_heuristic.py
"""

from repro.core import AdaptiveSchedule, HeuristicSchedule
from repro.experiments.formats import format_table
from repro.tune import SearchRunner, TrialSpec

BASE = dict(
    model="VGG13", dataset="Cifar10", num_train=256, num_val=128,
    batch_size=32, epochs=20, lr=0.02,
)


def main() -> None:
    schedules = [
        (
            "paper heuristic ladder",
            HeuristicSchedule(
                warmup_epochs=6, ladder=((3, (4, 1)), (3, (3, 1)), (3, (2, 1)))
            ),
        ),
        ("MAPE-adaptive (§3.5 general)", AdaptiveSchedule(warmup_epochs=6)),
        (
            "aggressive 9:1 after 2 epochs",
            HeuristicSchedule(warmup_epochs=2, ladder=(), final_ratio=(9, 1)),
        ),
    ]
    specs = [
        TrialSpec(trial_id=f"ablation-{i}", schedule=schedule.to_config(), **BASE)
        for i, (_, schedule) in enumerate(schedules)
    ]
    results = SearchRunner().run(specs)
    rows = [
        [name, result.best_metric, f"{result.gp_share:.0%}",
         f"{result.cycle_speedup:.2f}x"]
        for (name, _), result in zip(schedules, results)
    ]
    print(
        format_table(
            ["Schedule", "Best accuracy (%)", "GP batch share", "Cycle speedup"],
            rows,
            title="Schedule ablation on VGG13-mini / CIFAR10-like",
        )
    )


if __name__ == "__main__":
    main()
