"""Design-space exploration with the accelerator model.

Sweeps the questions a hardware architect would ask before committing to
an ADA-GP design:

* How does the speedup of each design (LOW / Efficient / MAX) change
  with the systolic-array size?
* How does batch size change the picture?  (The predictor consumes
  batch-averaged activations, so its overhead is batch-independent and
  hurts small batches most.)
* Where does the energy saving come from, per memory level?

Run:  python examples/accelerator_design_space.py
"""

from repro.accel import (
    AcceleratorConfig,
    AcceleratorModel,
    AdaGPDesign,
    training_energy,
)
from repro.core import HeuristicSchedule
from repro.experiments.formats import format_table
from repro.models import spec_for


def sweep_array_size() -> None:
    spec = spec_for("ResNet50", "ImageNet")
    schedule = HeuristicSchedule()
    rows = []
    for rows_, cols in ((8, 8), (12, 15), (16, 16), (32, 32)):
        model = AcceleratorModel(AcceleratorConfig(rows=rows_, cols=cols))
        cells = [f"{rows_}x{cols} ({rows_ * cols} PEs)"]
        for design in AdaGPDesign:
            cells.append(
                model.speedup(spec, design, schedule, epochs=90, batches_per_epoch=20)
            )
        rows.append(cells)
    print(
        format_table(
            ["Array", "LOW", "Efficient", "MAX"],
            rows,
            title="ResNet50/ImageNet speedup vs array size",
        )
    )


def sweep_batch_size() -> None:
    spec = spec_for("VGG13", "ImageNet")
    schedule = HeuristicSchedule()
    model = AcceleratorModel()
    rows = []
    for batch in (1, 4, 16, 64, 256):
        cells = [batch]
        for design in AdaGPDesign:
            cells.append(
                model.speedup(
                    spec, design, schedule, epochs=90, batches_per_epoch=20,
                    batch=batch,
                )
            )
        rows.append(cells)
    print(
        format_table(
            ["Batch", "LOW", "Efficient", "MAX"],
            rows,
            title="VGG13/ImageNet speedup vs batch size (alpha amortization)",
        )
    )


def energy_breakdown() -> None:
    spec = spec_for("DenseNet121", "ImageNet")
    rows = []
    for label, design in (("Baseline", None), ("Efficient", AdaGPDesign.EFFICIENT)):
        energy = training_energy(
            spec, design, epochs=90, batches_per_epoch=40000
        )
        rows.append(
            [
                label,
                f"{energy.dram_joules / 1e6:.3f}",
                f"{energy.sram_joules / 1e6:.3f}",
                f"{energy.total_joules / 1e6:.3f}",
            ]
        )
    print(
        format_table(
            ["Design", "DRAM (MJ)", "SRAM (MJ)", "Total (MJ)"],
            rows,
            title="DenseNet121/ImageNet memory energy by level",
        )
    )


def main() -> None:
    sweep_array_size()
    print()
    sweep_batch_size()
    print()
    energy_breakdown()


if __name__ == "__main__":
    main()
