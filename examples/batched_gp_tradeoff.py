"""Hooked vs batched Phase-GP: the accuracy/throughput trade-off.

§3.4 applies each layer's predicted update the moment its forward pass
completes — that per-layer immediacy is what the hardware's dedicated
predictor array buys.  In software the per-layer predictor invocations
dominate a Phase-GP batch, so the engine also offers ``batched_gp``:
one stacked ``predict_many`` trunk call plus one grouped optimizer
apply *after* the no-grad forward (the ROADMAP's "Batched GP phase").

For a single-pass feed-forward chain the two are mathematically
equivalent within a batch (no later layer re-reads an updated weight),
so accuracy should track closely while throughput improves — this
example measures both, plus plain BP as the baseline.

Run:  python examples/batched_gp_tradeoff.py
"""

import time

import numpy as np

from repro.core import HeuristicSchedule, Phase, ThroughputTimer, adagp_engine
from repro.data import preset_split
from repro.experiments.formats import format_table
from repro.models import build_mini
from repro.nn.losses import CrossEntropyLoss, accuracy


def run(split, batched_gp: bool, epochs: int = 16):
    model = build_mini("ResNet50", 10, rng=np.random.default_rng(1))
    timer = ThroughputTimer()
    engine = adagp_engine(
        model,
        CrossEntropyLoss(),
        lr=0.02,
        metric_fn=accuracy,
        schedule=HeuristicSchedule(warmup_epochs=4, ladder=((4, (2, 1)),)),
        batched_gp=batched_gp,
        backend="fused",
        callbacks=(timer,),
    )
    start = time.perf_counter()
    history = engine.fit(
        lambda: split.train.batches(32, rng=np.random.default_rng(2)),
        lambda: split.val.batches(64, shuffle=False),
        epochs=epochs,
    )
    elapsed = time.perf_counter() - start
    return history.best_metric, timer.batches_per_second(Phase.GP), elapsed


def main() -> None:
    split = preset_split("Cifar10", num_train=256, num_val=128, seed=0)
    rows = []
    for label, batched in (
        ("hooked (§3.4 per-layer updates)", False),
        ("batched (predict_many after fwd)", True),
    ):
        acc, gp_rate, elapsed = run(split, batched_gp=batched)
        rows.append(
            [label, acc, f"{gp_rate:.1f}", f"{elapsed:.1f} s"]
        )
    print(
        format_table(
            ["Phase-GP mode", "Best accuracy (%)", "GP batches/s", "Wall time"],
            rows,
            title="Hooked vs batched Phase-GP on ResNet50-mini / CIFAR10-like",
        )
    )


if __name__ == "__main__":
    main()
