"""Setup shim: this offline environment lacks the `wheel` package, so
`pip install -e .` cannot build a wheel; `python setup.py develop` (or
`pip install -e . --no-build-isolation` once wheel is available) installs
the same editable package from pyproject.toml metadata.

``python setup.py build_native`` compiles the native backend's C
kernels (equivalent to ``python -m repro.nn.backend.native_build``);
the package works without them — they are an acceleration, not a
dependency.
"""

import sys
from pathlib import Path

from setuptools import Command, setup


class build_native(Command):
    """Compile the native backend's shared library (cached on source hash)."""

    description = "build the native backend C kernels"
    user_options = [("force", "f", "rebuild even if the artifact exists")]

    def initialize_options(self) -> None:
        self.force = False

    def finalize_options(self) -> None:
        pass

    def run(self) -> None:
        sys.path.insert(0, str(Path(__file__).parent / "src"))
        from repro.nn.backend import native_build

        argv = ["--force"] if self.force else []
        code = native_build.main(argv)
        if code != 0:
            raise SystemExit(code)


setup(cmdclass={"build_native": build_native})
