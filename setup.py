"""Setup shim: this offline environment lacks the `wheel` package, so
`pip install -e .` cannot build a wheel; `python setup.py develop` (or
`pip install -e . --no-build-isolation` once wheel is available) installs
the same editable package from pyproject.toml metadata."""

from setuptools import setup

setup()
